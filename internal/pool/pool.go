// Package pool implements the fix-sized warm-container resource pool and
// its eviction policies: LRU (the paper's default for MLCR and
// Greedy-Match), FaasCache's greedy-dual priority eviction, and the
// 10-minute KeepAlive policy of public clouds (Section VI-A).
//
// The pool holds idle containers only; a container leaves the pool for the
// duration of every invocation it serves and is offered back on
// completion. Capacity is accounted in megabytes of container memory.
package pool

import (
	"fmt"
	"sort"
	"time"

	"mlcr/internal/container"
)

// Evictor decides which idle container to sacrifice when the pool is full,
// and whether new containers may displace old ones at all.
type Evictor interface {
	// Name identifies the policy for reports.
	Name() string
	// Admit reports whether a new container may enter a full pool by
	// evicting others. KeepAlive returns false: it rejects keep-warm
	// requests when the pool is full.
	Admit() bool
	// Victim selects the container to evict among the given idle
	// containers (never empty). now is the current virtual time.
	Victim(idle []*container.Container, now time.Duration) *container.Container
	// TTL is the maximum idle lifetime; zero means unlimited.
	TTL() time.Duration
	// OnAdd and OnUse let stateful policies (FaasCache) maintain
	// frequency and priority bookkeeping.
	OnAdd(c *container.Container, startupCost time.Duration, now time.Duration)
	OnUse(c *container.Container, now time.Duration)
	// OnEvict is called for every eviction or expiry.
	OnEvict(c *container.Container)
}

// Stats counts pool-level events for the experiment reports (Fig 10).
type Stats struct {
	// Adds counts containers accepted into the pool.
	Adds int
	// Evictions counts containers displaced to make room.
	Evictions int
	// Rejections counts keep-warm requests refused (KeepAlive full).
	Rejections int
	// Expirations counts TTL expiries.
	Expirations int
	// PeakUsedMB is the highest memory the pool ever held.
	PeakUsedMB float64
}

// Reasons passed to a Pool's OnEvict hook.
const (
	// ReasonCapacity: displaced by the evictor to make room.
	ReasonCapacity = "capacity"
	// ReasonExpired: exceeded the idle TTL.
	ReasonExpired = "expired"
	// ReasonRejected: a keep-warm request refused by a full pool.
	ReasonRejected = "rejected"
	// ReasonOversize: the container alone exceeds the pool capacity.
	ReasonOversize = "oversize"
)

// Pool is a fix-sized set of idle warm containers.
type Pool struct {
	capacityMB float64 // <= 0 means unlimited
	evictor    Evictor
	byID       map[int]*container.Container
	order      []*container.Container // insertion-ordered view for determinism
	usedMB     float64
	stats      Stats

	// OnEvict, when non-nil, observes every container the pool kills —
	// evictions, TTL expiries and rejected keep-warm offers — with one
	// of the Reason* constants and the current virtual time. It is the
	// pool-level observability hook; a nil hook costs one branch.
	OnEvict func(c *container.Container, reason string, now time.Duration)
}

// New creates a pool with the given capacity in MB (<= 0 for unlimited)
// and eviction policy.
func New(capacityMB float64, ev Evictor) *Pool {
	if ev == nil {
		panic("pool: nil evictor")
	}
	return &Pool{capacityMB: capacityMB, evictor: ev, byID: make(map[int]*container.Container)}
}

// CapacityMB returns the configured capacity (<= 0 means unlimited).
func (p *Pool) CapacityMB() float64 { return p.capacityMB }

// UsedMB returns the memory currently held by idle containers.
func (p *Pool) UsedMB() float64 { return p.usedMB }

// FreeMB returns remaining capacity, or +Inf-like large value when
// unlimited (callers treat capacity <= 0 as unlimited via CapacityMB).
func (p *Pool) FreeMB() float64 {
	if p.capacityMB <= 0 {
		return 0
	}
	return p.capacityMB - p.usedMB
}

// Len returns the number of idle containers in the pool.
func (p *Pool) Len() int { return len(p.order) }

// Stats returns accumulated pool statistics.
func (p *Pool) Stats() Stats { return p.stats }

// Evictor exposes the configured policy.
func (p *Pool) Evictor() Evictor { return p.evictor }

// Idle returns the idle containers in deterministic (insertion) order.
// The returned slice is shared; callers must not mutate it.
func (p *Pool) Idle() []*container.Container { return p.order }

// Get returns the pooled container with the given ID, or nil.
func (p *Pool) Get(id int) *container.Container { return p.byID[id] }

// Expire removes idle containers whose idle time exceeds the evictor's
// TTL — the per-container TTL when the evictor implements
// PerContainerTTL, the global one otherwise. It returns the expired
// containers. Call with the current virtual time before making
// scheduling decisions.
func (p *Pool) Expire(now time.Duration) []*container.Container {
	perC, adaptive := p.evictor.(PerContainerTTL)
	globalTTL := p.evictor.TTL()
	if globalTTL <= 0 && !adaptive {
		return nil
	}
	var out []*container.Container
	for _, c := range append([]*container.Container(nil), p.order...) {
		ttl := globalTTL
		if adaptive {
			ttl = perC.TTLFor(c)
		}
		if ttl > 0 && c.IdleFor(now) > ttl {
			p.remove(c)
			c.Kill()
			p.evictor.OnEvict(c)
			p.stats.Expirations++
			if p.OnEvict != nil {
				p.OnEvict(c, ReasonExpired, now)
			}
			out = append(out, c)
		}
	}
	return out
}

// Add offers a finished (idle) container to the pool, evicting idle
// containers per the policy if needed. It returns false when the container
// was rejected or could not fit even after evictions (the container is
// killed in that case). startupCost is the cost the container saved its
// last invocation, used by cost-aware evictors.
func (p *Pool) Add(c *container.Container, startupCost time.Duration, now time.Duration) bool {
	if c.State != container.Idle {
		panic(fmt.Sprintf("pool: Add container %d in state %v", c.ID, c.State))
	}
	if _, dup := p.byID[c.ID]; dup {
		panic(fmt.Sprintf("pool: container %d already pooled", c.ID))
	}
	if p.capacityMB > 0 && c.MemoryMB > p.capacityMB {
		c.Kill()
		p.stats.Rejections++
		if p.OnEvict != nil {
			p.OnEvict(c, ReasonOversize, now)
		}
		return false
	}
	for p.capacityMB > 0 && p.usedMB+c.MemoryMB > p.capacityMB {
		if !p.evictor.Admit() {
			c.Kill()
			p.stats.Rejections++
			if p.OnEvict != nil {
				p.OnEvict(c, ReasonRejected, now)
			}
			return false
		}
		victim := p.evictor.Victim(p.order, now)
		if victim == nil {
			c.Kill()
			p.stats.Rejections++
			if p.OnEvict != nil {
				p.OnEvict(c, ReasonRejected, now)
			}
			return false
		}
		p.remove(victim)
		victim.Kill()
		p.evictor.OnEvict(victim)
		p.stats.Evictions++
		if p.OnEvict != nil {
			p.OnEvict(victim, ReasonCapacity, now)
		}
	}
	p.byID[c.ID] = c
	p.order = append(p.order, c)
	p.usedMB += c.MemoryMB
	p.stats.Adds++
	if p.usedMB > p.stats.PeakUsedMB {
		p.stats.PeakUsedMB = p.usedMB
	}
	p.evictor.OnAdd(c, startupCost, now)
	return true
}

// Take claims an idle container for reuse, removing it from the pool.
// It panics if the container is not pooled (a scheduler bug).
func (p *Pool) Take(id int, now time.Duration) *container.Container {
	c, ok := p.byID[id]
	if !ok {
		panic(fmt.Sprintf("pool: Take of unpooled container %d", id))
	}
	p.remove(c)
	p.evictor.OnUse(c, now)
	return c
}

func (p *Pool) remove(c *container.Container) {
	delete(p.byID, c.ID)
	for i, o := range p.order {
		if o == c {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.usedMB -= c.MemoryMB
	if p.usedMB < 1e-9 {
		p.usedMB = 0
	}
}

// --- LRU ---

// LRU evicts the least-recently-used idle container. It is the eviction
// policy used by MLCR and Greedy-Match in the paper.
type LRU struct{}

// Name implements Evictor.
func (LRU) Name() string { return "lru" }

// Admit implements Evictor: LRU always displaces old containers.
func (LRU) Admit() bool { return true }

// TTL implements Evictor: no idle-time limit.
func (LRU) TTL() time.Duration { return 0 }

// Victim returns the container with the oldest LastUsedAt.
func (LRU) Victim(idle []*container.Container, _ time.Duration) *container.Container {
	var victim *container.Container
	for _, c := range idle {
		if victim == nil || c.LastUsedAt < victim.LastUsedAt {
			victim = c
		}
	}
	return victim
}

// OnAdd implements Evictor (stateless).
func (LRU) OnAdd(*container.Container, time.Duration, time.Duration) {}

// OnUse implements Evictor (stateless).
func (LRU) OnUse(*container.Container, time.Duration) {}

// OnEvict implements Evictor (stateless).
func (LRU) OnEvict(*container.Container) {}

// --- KeepAlive ---

// KeepAlive keeps containers warm for a fixed duration (public clouds use
// 5–10 minutes) and rejects keep-warm requests when the pool is full.
type KeepAlive struct {
	// Alive is the keep-warm duration (the paper uses 10 minutes).
	Alive time.Duration
}

// Name implements Evictor.
func (k KeepAlive) Name() string { return "keepalive" }

// Admit implements Evictor: a full pool rejects new containers.
func (k KeepAlive) Admit() bool { return false }

// TTL implements Evictor.
func (k KeepAlive) TTL() time.Duration { return k.Alive }

// Victim implements Evictor; unreachable because Admit is false.
func (k KeepAlive) Victim([]*container.Container, time.Duration) *container.Container { return nil }

// OnAdd implements Evictor (stateless).
func (k KeepAlive) OnAdd(*container.Container, time.Duration, time.Duration) {}

// OnUse implements Evictor (stateless).
func (k KeepAlive) OnUse(*container.Container, time.Duration) {}

// OnEvict implements Evictor (stateless).
func (k KeepAlive) OnEvict(*container.Container) {}

// --- FaasCache ---

// FaasCache implements the greedy-dual keep-alive policy of Fuerst &
// Sharma (ASPLOS'21): each warm container gets priority
//
//	priority = clock + frequency × cost / size
//
// where frequency counts invocations of the container's function, cost is
// the startup latency the warm container saves, and size is its memory.
// The pool evicts the minimum-priority container and raises the global
// clock to that priority, aging the remaining entries.
type FaasCache struct {
	clock float64
	freq  map[int]int     // function ID -> invocation count
	prio  map[int]float64 // container ID -> priority
	cost  map[int]float64 // container ID -> startup cost (seconds)
}

// NewFaasCache returns an initialized FaasCache evictor.
func NewFaasCache() *FaasCache {
	return &FaasCache{freq: make(map[int]int), prio: make(map[int]float64), cost: make(map[int]float64)}
}

// Name implements Evictor.
func (f *FaasCache) Name() string { return "faascache" }

// Admit implements Evictor.
func (f *FaasCache) Admit() bool { return true }

// TTL implements Evictor: greedy-dual has no fixed TTL.
func (f *FaasCache) TTL() time.Duration { return 0 }

func (f *FaasCache) priority(c *container.Container, cost float64) float64 {
	size := c.MemoryMB
	if size <= 0 {
		size = 1
	}
	return f.clock + float64(f.freq[c.FnID])*cost/size
}

// OnAdd implements Evictor: computes the container's priority from the
// current clock, its function's observed frequency, the startup cost it
// saves and its size.
func (f *FaasCache) OnAdd(c *container.Container, startupCost time.Duration, _ time.Duration) {
	f.freq[c.FnID]++
	f.cost[c.ID] = startupCost.Seconds()
	f.prio[c.ID] = f.priority(c, f.cost[c.ID])
}

// OnUse implements Evictor: refreshes the priority on reuse.
func (f *FaasCache) OnUse(c *container.Container, _ time.Duration) {
	f.freq[c.FnID]++
	f.prio[c.ID] = f.priority(c, f.cost[c.ID])
}

// OnEvict implements Evictor: drops bookkeeping for the container.
func (f *FaasCache) OnEvict(c *container.Container) {
	delete(f.prio, c.ID)
	delete(f.cost, c.ID)
}

// Victim returns the minimum-priority container and advances the clock to
// its priority (the greedy-dual aging step). Ties break on lower ID for
// determinism.
func (f *FaasCache) Victim(idle []*container.Container, _ time.Duration) *container.Container {
	cands := append([]*container.Container(nil), idle...)
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })
	var victim *container.Container
	best := 0.0
	for _, c := range cands {
		p, ok := f.prio[c.ID]
		if !ok {
			p = f.clock
		}
		if victim == nil || p < best {
			victim, best = c, p
		}
	}
	if victim != nil {
		f.clock = best
	}
	return victim
}
