package pool

import (
	"mlcr/internal/container"
	"mlcr/internal/core"
	"mlcr/internal/image"
	"mlcr/internal/obs/perf"
)

// MatchCandidate is one idle container that matches a queried image,
// together with its match level.
type MatchCandidate struct {
	C     *container.Container
	Level core.MatchLevel
}

// AppendMatches appends every idle container matching img at some level
// (L3 first, then L2, then L1) to dst and returns it. The result set and
// levels are exactly those of scanning the whole pool with core.Match;
// only the enumeration order differs (callers needing a specific order
// sort with a total order, as the DQN featurizer does). Passing a reused
// dst slice makes steady-state calls allocation-free.
//
// The index exploits the prefix structure of multi-level matching
// (Table I): a MatchL3 container shares all three level keys with img, a
// MatchL2 container the first two, a MatchL1 container the first one. So
// the L3 bucket for img's full key holds exactly the full matches, the
// L2 bucket minus those holds the L2 matches, and the L1 bucket minus
// both holds the L1 matches — no other container can match at all.
// Buckets are probed with the image's interned LevelIDs, so the lookups
// hash and compare dense integers, never key strings.
func (p *Pool) AppendMatches(dst []MatchCandidate, img image.Image) []MatchCandidate {
	sp := p.Prof.Start(perf.PhasePoolScan)
	ids := img.LevelIDs()
	for _, e := range p.l3[ids] {
		dst = append(dst, MatchCandidate{C: e.c, Level: core.MatchL3})
	}
	for _, e := range p.l2[[2]image.LevelID{ids[0], ids[1]}] {
		if e.k3[2] != ids[2] {
			dst = append(dst, MatchCandidate{C: e.c, Level: core.MatchL2})
		}
	}
	for _, e := range p.l1[ids[0]] {
		if e.k2[1] != ids[1] {
			dst = append(dst, MatchCandidate{C: e.c, Level: core.MatchL1})
		}
	}
	sp.End()
	return dst
}

// indexAdd inserts an entry into its three buckets, recording its
// positions for O(1) swap-removal.
func (p *Pool) indexAdd(e *entry) {
	b1 := p.l1[e.k1]
	e.bi[0] = len(b1)
	p.l1[e.k1] = append(b1, e)

	b2 := p.l2[e.k2]
	e.bi[1] = len(b2)
	p.l2[e.k2] = append(b2, e)

	b3 := p.l3[e.k3]
	e.bi[2] = len(b3)
	p.l3[e.k3] = append(b3, e)
}

// indexRemove deletes an entry from its three buckets by swapping the
// bucket's last element into its slot. Bucket-internal order is therefore
// arbitrary (but deterministic — it depends only on the operation
// sequence, never on map iteration). Emptied buckets keep their slices so
// re-adding a recurring image allocates nothing.
func (p *Pool) indexRemove(e *entry) {
	b1 := p.l1[e.k1]
	last := len(b1) - 1
	if e.bi[0] != last {
		m := b1[last]
		b1[e.bi[0]] = m
		m.bi[0] = e.bi[0]
	}
	b1[last] = nil
	p.l1[e.k1] = b1[:last]

	b2 := p.l2[e.k2]
	last = len(b2) - 1
	if e.bi[1] != last {
		m := b2[last]
		b2[e.bi[1]] = m
		m.bi[1] = e.bi[1]
	}
	b2[last] = nil
	p.l2[e.k2] = b2[:last]

	b3 := p.l3[e.k3]
	last = len(b3) - 1
	if e.bi[2] != last {
		m := b3[last]
		b3[e.bi[2]] = m
		m.bi[2] = e.bi[2]
	}
	b3[last] = nil
	p.l3[e.k3] = b3[:last]
}
