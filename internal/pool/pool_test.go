package pool

import (
	"testing"
	"time"

	"mlcr/internal/container"
	"mlcr/internal/evict"
	"mlcr/internal/image"
	"mlcr/internal/workload"
)

func fn(id int, mem float64) *workload.Function {
	return &workload.Function{
		ID: id, Name: "f",
		Image: image.NewImage("img",
			image.Package{Name: "alpine", Version: "1", Level: image.OS, SizeMB: 5, Pull: 50 * time.Millisecond}),
		Create: 100 * time.Millisecond, Exec: time.Second, MemoryMB: mem,
	}
}

// idleContainer builds an idle container with the given id/function/times.
func idleContainer(id int, f *workload.Function, created time.Duration) *container.Container {
	c, _ := container.NewCold(id, &workload.Invocation{Fn: f, Exec: f.Exec}, created)
	c.Complete(c.BusyUntil)
	return c
}

func TestAddAndTake(t *testing.T) {
	p := New(1000, evict.NewLRU())
	c := idleContainer(1, fn(1, 128), 0)
	if !p.Add(c, time.Second, c.IdleSince) {
		t.Fatal("Add rejected with free capacity")
	}
	if p.Len() != 1 || p.UsedMB() != 128 {
		t.Fatalf("Len=%d Used=%v", p.Len(), p.UsedMB())
	}
	got := p.Take(1, c.IdleSince)
	if got != c || p.Len() != 0 || p.UsedMB() != 0 {
		t.Fatalf("Take returned %v; pool Len=%d Used=%v", got, p.Len(), p.UsedMB())
	}
}

func TestAddPanicsOnBusy(t *testing.T) {
	p := New(1000, evict.NewLRU())
	c, _ := container.NewCold(1, &workload.Invocation{Fn: fn(1, 128), Exec: time.Second}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("adding busy container did not panic")
		}
	}()
	p.Add(c, 0, 0)
}

func TestAddPanicsOnDuplicate(t *testing.T) {
	p := New(1000, evict.NewLRU())
	c := idleContainer(1, fn(1, 128), 0)
	p.Add(c, 0, c.IdleSince)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate add did not panic")
		}
	}()
	p.Add(c, 0, c.IdleSince)
}

func TestTakePanicsOnMissing(t *testing.T) {
	p := New(1000, evict.NewLRU())
	defer func() {
		if recover() == nil {
			t.Fatal("Take of unknown id did not panic")
		}
	}()
	p.Take(42, 0)
}

func TestOversizedContainerRejected(t *testing.T) {
	p := New(100, evict.NewLRU())
	c := idleContainer(1, fn(1, 200), 0)
	if p.Add(c, 0, c.IdleSince) {
		t.Fatal("container larger than pool accepted")
	}
	if c.State != container.Dead {
		t.Fatal("rejected container not killed")
	}
	if p.Stats().Rejections != 1 {
		t.Fatalf("Rejections = %d, want 1", p.Stats().Rejections)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	p := New(256, evict.NewLRU())
	f := fn(1, 128)
	a := idleContainer(1, f, 0)
	b := idleContainer(2, f, time.Second)
	p.Add(a, 0, a.IdleSince)
	p.Add(b, 0, b.IdleSince)
	// Pool full (256). Adding c must evict a (oldest LastUsedAt).
	c := idleContainer(3, f, 2*time.Second)
	if !p.Add(c, 0, c.IdleSince) {
		t.Fatal("LRU refused admittable container")
	}
	if p.Get(1) != nil {
		t.Fatal("LRU did not evict the oldest container")
	}
	if a.State != container.Dead {
		t.Fatal("evicted container not killed")
	}
	if p.Get(2) == nil || p.Get(3) == nil {
		t.Fatal("wrong containers evicted")
	}
	if p.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", p.Stats().Evictions)
	}
}

func TestLRUEvictsMultipleForLargeContainer(t *testing.T) {
	p := New(256, evict.NewLRU())
	f := fn(1, 128)
	p.Add(idleContainer(1, f, 0), 0, time.Second)
	p.Add(idleContainer(2, f, time.Second), 0, 2*time.Second)
	big := idleContainer(3, fn(2, 256), 2*time.Second)
	if !p.Add(big, 0, big.IdleSince) {
		t.Fatal("big container rejected")
	}
	if p.Len() != 1 || p.Get(3) == nil {
		t.Fatal("expected both small containers evicted")
	}
	if p.Stats().Evictions != 2 {
		t.Fatalf("Evictions = %d, want 2", p.Stats().Evictions)
	}
}

func TestKeepAliveRejectsWhenFull(t *testing.T) {
	p := New(128, evict.KeepAlive{Alive: 10 * time.Minute})
	f := fn(1, 128)
	p.Add(idleContainer(1, f, 0), 0, time.Second)
	c := idleContainer(2, f, time.Second)
	if p.Add(c, 0, c.IdleSince) {
		t.Fatal("full KeepAlive pool accepted a container")
	}
	if p.Get(1) == nil {
		t.Fatal("KeepAlive evicted an existing container")
	}
	if p.Stats().Rejections != 1 {
		t.Fatalf("Rejections = %d, want 1", p.Stats().Rejections)
	}
}

func TestKeepAliveExpires(t *testing.T) {
	p := New(1000, evict.KeepAlive{Alive: 10 * time.Minute})
	f := fn(1, 128)
	c := idleContainer(1, f, 0)
	p.Add(c, 0, c.IdleSince)
	if got := p.Expire(c.IdleSince + 5*time.Minute); len(got) != 0 {
		t.Fatal("container expired before TTL")
	}
	got := p.Expire(c.IdleSince + 11*time.Minute)
	if len(got) != 1 || got[0] != c {
		t.Fatalf("Expire returned %v", got)
	}
	if p.Len() != 0 || p.Stats().Expirations != 1 {
		t.Fatalf("pool after expiry: Len=%d stats=%+v", p.Len(), p.Stats())
	}
}

func TestLRUNoTTL(t *testing.T) {
	p := New(1000, evict.NewLRU())
	c := idleContainer(1, fn(1, 128), 0)
	p.Add(c, 0, c.IdleSince)
	if got := p.Expire(c.IdleSince + 100*time.Hour); len(got) != 0 {
		t.Fatal("LRU pool expired a container")
	}
}

func TestFaasCachePrefersEvictingLowValue(t *testing.T) {
	ev := evict.NewFaasCache()
	p := New(256, ev)
	// Frequent, expensive, small function -> high priority.
	hot := fn(1, 128)
	// Rare, cheap, same size -> low priority.
	cold := fn(2, 128)
	hc := idleContainer(1, hot, 0)
	cc := idleContainer(2, cold, time.Second)
	p.Add(hc, 10*time.Second, hc.IdleSince) // cost 10s
	p.Add(cc, 100*time.Millisecond, cc.IdleSince)
	// Boost hot function frequency (as if reused many times).
	for i := 0; i < 5; i++ {
		taken := p.Take(1, hc.IdleSince)
		taken.State = container.Idle // keep lifecycle simple for the test
		p.Add(taken, 10*time.Second, hc.IdleSince)
	}
	// Note cc is LRU-newer than hc, but greedy-dual must evict cc (low value).
	nc := idleContainer(3, fn(3, 128), 2*time.Second)
	if !p.Add(nc, time.Second, nc.IdleSince) {
		t.Fatal("FaasCache refused admittable container")
	}
	if p.Get(2) != nil {
		t.Fatal("FaasCache evicted the wrong container (kept low-priority one)")
	}
	if p.Get(1) == nil {
		t.Fatal("FaasCache evicted the high-priority container")
	}
}

func TestFaasCacheClockAges(t *testing.T) {
	ev := evict.NewFaasCache()
	if ev.Clock() != 0 {
		t.Fatal("fresh clock not zero")
	}
	p := New(128, ev)
	f := fn(1, 128)
	p.Add(idleContainer(1, f, 0), time.Second, time.Second)
	p.Add(idleContainer(2, f, time.Second), time.Second, 2*time.Second) // evicts #1
	if ev.Clock() <= 0 {
		t.Fatalf("clock did not advance after eviction: %v", ev.Clock())
	}
}

func TestPeakUsedTracksHighWater(t *testing.T) {
	p := New(1000, evict.NewLRU())
	f := fn(1, 300)
	a := idleContainer(1, f, 0)
	b := idleContainer(2, f, time.Second)
	p.Add(a, 0, a.IdleSince)
	p.Add(b, 0, b.IdleSince)
	p.Take(1, b.IdleSince)
	p.Take(2, b.IdleSince)
	if got := p.Stats().PeakUsedMB; got != 600 {
		t.Fatalf("PeakUsedMB = %v, want 600", got)
	}
	if p.UsedMB() != 0 {
		t.Fatalf("UsedMB after draining = %v", p.UsedMB())
	}
}

func TestUnlimitedPoolNeverEvicts(t *testing.T) {
	p := New(0, evict.NewLRU())
	f := fn(1, 1000)
	for i := 1; i <= 50; i++ {
		c := idleContainer(i, f, time.Duration(i)*time.Second)
		if !p.Add(c, 0, c.IdleSince) {
			t.Fatal("unlimited pool rejected a container")
		}
	}
	if p.Len() != 50 || p.Stats().Evictions != 0 {
		t.Fatalf("Len=%d Evictions=%d", p.Len(), p.Stats().Evictions)
	}
}

func TestNilEvictorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil evictor) did not panic")
		}
	}()
	New(100, nil)
}

func TestIdleOrderDeterministic(t *testing.T) {
	p := New(0, evict.NewLRU())
	f := fn(1, 10)
	for i := 1; i <= 5; i++ {
		c := idleContainer(i, f, time.Duration(i)*time.Second)
		p.Add(c, 0, c.IdleSince)
	}
	idle := p.Idle()
	for i, c := range idle {
		if c.ID != i+1 {
			t.Fatalf("idle order = %v at %d", c.ID, i)
		}
	}
}
