package pool

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mlcr/internal/container"
	"mlcr/internal/evict"
	"mlcr/internal/workload"
)

// TestPropertyPoolInvariants drives a pool with random add/take/expire
// sequences and checks the core invariants after every operation:
//
//   - UsedMB equals the sum of member container sizes,
//   - UsedMB never exceeds capacity,
//   - Len equals the member count and Get finds exactly the members,
//   - every removed container is Dead, every member Idle.
func TestPropertyPoolInvariants(t *testing.T) {
	run := func(seed int64, capMB uint16, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := float64(capMB%2000) + 100
		p := New(capacity, evict.NewLRU())
		members := map[int]*container.Container{}
		nextID := 1
		now := time.Duration(0)

		check := func() bool {
			var sum float64
			for _, c := range members {
				sum += c.MemoryMB
				if c.State != container.Idle {
					return false
				}
				if p.Get(c.ID) != c {
					return false
				}
			}
			if p.Len() != len(members) {
				return false
			}
			if diff := p.UsedMB() - sum; diff > 1e-6 || diff < -1e-6 {
				return false
			}
			return p.UsedMB() <= capacity+1e-6
		}

		for _, op := range ops {
			now += time.Duration(op) * time.Millisecond
			switch op % 3 {
			case 0: // add a fresh idle container
				mem := float64(rng.Intn(400) + 50)
				f := fn(nextID%7+1, mem)
				inv := &workload.Invocation{Fn: f, Exec: f.Exec}
				c, _ := container.NewCold(nextID, inv, now)
				nextID++
				c.Complete(c.BusyUntil)
				if now < c.IdleSince {
					now = c.IdleSince
				}
				if p.Add(c, time.Second, now) {
					members[c.ID] = c
				} else if c.State != container.Dead {
					return false
				}
				// Some members may have been evicted: re-sync.
				for id, m := range members {
					if m.State == container.Dead {
						delete(members, id)
					}
				}
			case 1: // take a random member
				for id := range members {
					c := p.Take(id, now)
					if c == nil {
						return false
					}
					delete(members, id)
					break
				}
			case 2: // expire (no-op for LRU, must not corrupt state)
				p.Expire(now)
			}
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
