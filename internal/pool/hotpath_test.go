package pool

import (
	"testing"
	"time"

	"mlcr/internal/core"
	"mlcr/internal/evict"
	"mlcr/internal/image"
	"mlcr/internal/workload"
)

// mlFn builds a function with a three-level image for match-index tests.
func mlFn(id int, os, lang, rt string) *workload.Function {
	var ps []image.Package
	if os != "" {
		ps = append(ps, image.Package{Name: os, Version: "1", Level: image.OS, SizeMB: 10})
	}
	if lang != "" {
		ps = append(ps, image.Package{Name: lang, Version: "1", Level: image.Language, SizeMB: 20})
	}
	if rt != "" {
		ps = append(ps, image.Package{Name: rt, Version: "1", Level: image.Runtime, SizeMB: 5})
	}
	return &workload.Function{
		ID: id, Name: "f", Image: image.NewImage("img", ps...),
		Create: 100 * time.Millisecond, Exec: time.Second, MemoryMB: 64,
	}
}

// TestAppendMatchesMatchesNaiveScan checks the index against the ground
// truth: a full core.Match scan over Idle(), across every match level,
// including empty levels and after pool churn.
func TestAppendMatchesMatchesNaiveScan(t *testing.T) {
	p := New(0, evict.NewLRU())
	fns := []*workload.Function{
		mlFn(1, "debian", "python", "flask"),
		mlFn(2, "debian", "python", "numpy"),
		mlFn(3, "debian", "node", "express"),
		mlFn(4, "alpine", "python", "flask"),
		mlFn(5, "debian", "python", "flask"), // duplicate image, distinct fn
		mlFn(6, "debian", "", ""),            // empty language+runtime levels
		mlFn(7, "", "", ""),                  // fully empty image
	}
	id := 100
	for round := 0; round < 2; round++ {
		for _, f := range fns {
			p.Add(idleContainer(id, f, time.Duration(id)*time.Second), 0, 0)
			id++
		}
	}
	// Churn: remove a few so swap-removal and freelist paths run.
	p.Take(101, 0)
	p.Take(105, 0)
	p.Expire(0)

	queries := append(fns, mlFn(8, "centos", "python", "flask"), mlFn(9, "debian", "python", "torch"))
	var scratch []MatchCandidate
	for _, q := range queries {
		scratch = p.AppendMatches(scratch[:0], q.Image)

		want := map[int]core.MatchLevel{}
		for _, c := range p.Idle() {
			if lv := core.Match(q.Image, c.Image); lv != core.NoMatch {
				want[c.ID] = lv
			}
		}
		got := map[int]core.MatchLevel{}
		prev := core.MatchL3
		for _, mc := range scratch {
			if mc.Level > prev {
				t.Fatalf("query %d: levels not emitted best-first", q.ID)
			}
			prev = mc.Level
			if _, dup := got[mc.C.ID]; dup {
				t.Fatalf("query %d: container %d emitted twice", q.ID, mc.C.ID)
			}
			got[mc.C.ID] = mc.Level
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d matches, want %d", q.ID, len(got), len(want))
		}
		for cid, lv := range want {
			if got[cid] != lv {
				t.Fatalf("query %d: container %d level %v, want %v", q.ID, cid, got[cid], lv)
			}
		}
	}
}

// TestPoolHotPathZeroAllocs asserts the steady-state Add/Take/match cycle
// (including the lazily rebuilt Idle view) allocates nothing once entry
// freelist, buckets and caches are warm.
func TestPoolHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	p := New(0, evict.NewLRU())
	f := mlFn(1, "debian", "python", "flask")
	g := mlFn(2, "debian", "python", "numpy")
	cf := idleContainer(10, f, 0)
	cg := idleContainer(11, g, 0)
	var matches []MatchCandidate
	cycle := func() {
		p.Add(cf, 0, 0)
		p.Add(cg, 0, 0)
		p.Idle()
		matches = p.AppendMatches(matches[:0], f.Image)
		p.Take(cf.ID, 0)
		p.Take(cg.ID, 0)
	}
	cycle() // warm freelist, buckets and the Idle cache
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Fatalf("steady-state Add/Take/match cycle allocates %v per run, want 0", n)
	}
}

// TestExpireZeroAllocsWhenNothingExpires asserts the satellite fix: the
// per-call snapshot copy of the idle list is gone.
func TestExpireZeroAllocsWhenNothingExpires(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	p := New(0, evict.KeepAlive{Alive: time.Hour})
	f := mlFn(1, "debian", "python", "flask")
	for i := 0; i < 8; i++ {
		p.Add(idleContainer(20+i, f, 0), 0, 0)
	}
	if n := testing.AllocsPerRun(100, func() { p.Expire(time.Minute) }); n != 0 {
		t.Fatalf("no-op Expire allocates %v per run, want 0", n)
	}
}

// TestExpireReturnsInsertionOrder pins the deterministic expiry order the
// list-based walk must preserve.
func TestExpireReturnsInsertionOrder(t *testing.T) {
	p := New(0, evict.KeepAlive{Alive: time.Second})
	f := mlFn(1, "debian", "python", "flask")
	var want []int
	for i := 0; i < 5; i++ {
		c := idleContainer(30+i, f, 0)
		p.Add(c, 0, 0)
		want = append(want, c.ID)
	}
	expired := p.Expire(time.Hour)
	if len(expired) != len(want) {
		t.Fatalf("expired %d containers, want %d", len(expired), len(want))
	}
	for i, c := range expired {
		if c.ID != want[i] {
			t.Fatalf("expired[%d] = %d, want %d (insertion order)", i, c.ID, want[i])
		}
	}
	if p.Len() != 0 || p.UsedMB() != 0 {
		t.Fatalf("pool not empty after full expiry: len=%d used=%v", p.Len(), p.UsedMB())
	}
}
