//go:build race

package pool

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
