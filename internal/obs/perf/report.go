package perf

import (
	"encoding/json"
	"fmt"
	"io"
)

// PhaseStat is the aggregated timing of one phase over a run, with
// quantiles quantized to the HDR bucket edges (≤3.1% relative error)
// and exact count/total/min/max.
type PhaseStat struct {
	Phase   string `json:"phase"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MinNS   int64  `json:"min_ns"`
	MaxNS   int64  `json:"max_ns"`
	P50NS   int64  `json:"p50_ns"`
	P90NS   int64  `json:"p90_ns"`
	P99NS   int64  `json:"p99_ns"`
	P999NS  int64  `json:"p999_ns"`
}

// statOf summarizes one HDR into a PhaseStat.
func statOf(name string, h *HDR) PhaseStat {
	return PhaseStat{
		Phase:   name,
		Count:   h.Count(),
		TotalNS: h.Sum(),
		MinNS:   h.Min(),
		MaxNS:   h.Max(),
		P50NS:   h.Quantile(0.50),
		P90NS:   h.Quantile(0.90),
		P99NS:   h.Quantile(0.99),
		P999NS:  h.Quantile(0.999),
	}
}

// Report is the per-run phase breakdown plus optional memory
// bracketing — the PerfReport attached to a platform RunResult and
// serialized into bench results. Phases appear in taxonomy order and
// only when they recorded at least one span.
type Report struct {
	Phases []PhaseStat `json:"phases"`
	Mem    *MemDelta   `json:"mem,omitempty"`
}

// Report summarizes the profiler's current state. Returns nil on a nil
// profiler so downstream JSON omits the field entirely.
func (p *Profiler) Report() *Report {
	if p == nil {
		return nil
	}
	r := &Report{}
	for ph := Phase(0); ph < NumPhases; ph++ {
		h := &p.phases[ph]
		if h.Count() == 0 {
			continue
		}
		r.Phases = append(r.Phases, statOf(ph.String(), h))
	}
	return r
}

// PhaseByName returns the stat for the named phase, or a zero stat and
// false when the phase recorded nothing.
func (r *Report) PhaseByName(name string) (PhaseStat, bool) {
	if r == nil {
		return PhaseStat{}, false
	}
	for _, s := range r.Phases {
		if s.Phase == name {
			return s, true
		}
	}
	return PhaseStat{}, false
}

// WriteJSONL emits the report as one JSON object per line — one line
// per phase, then one {"mem": …} line when memory was bracketed —
// matching the observability layer's JSONL trace convention so perf
// lines can be appended to the same stream.
func (r *Report) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for i := range r.Phases {
		if err := enc.Encode(&r.Phases[i]); err != nil {
			return fmt.Errorf("perf: encode phase %s: %w", r.Phases[i].Phase, err)
		}
	}
	if r.Mem != nil {
		if err := enc.Encode(struct {
			Mem *MemDelta `json:"mem"`
		}{r.Mem}); err != nil {
			return fmt.Errorf("perf: encode mem: %w", err)
		}
	}
	return nil
}
