package perf

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// counterClock is the deterministic test clock: each read advances by
// step, so span k measures exactly step nanoseconds.
func counterClock(step time.Duration) Clock {
	var t time.Duration
	return func() time.Duration {
		t += step
		return t
	}
}

func TestProfilerRecordsSpans(t *testing.T) {
	p := New(counterClock(10))
	for i := 0; i < 100; i++ {
		sp := p.Start(PhaseSchedule)
		sp.End()
	}
	h := p.Phase(PhaseSchedule)
	if h.Count() != 100 {
		t.Fatalf("count %d, want 100", h.Count())
	}
	if h.Min() != 10 || h.Max() != 10 {
		t.Fatalf("span width %d..%d, want exactly 10", h.Min(), h.Max())
	}
	if p.Phase(PhaseDispatch).Count() != 0 {
		t.Fatal("untouched phase recorded spans")
	}
}

func TestNilProfilerIsInert(t *testing.T) {
	var p *Profiler
	sp := p.Start(PhaseNNForward) // must not panic or read any clock
	sp.End()
	if p.Phase(PhaseNNForward) != nil {
		t.Fatal("nil profiler returned a histogram")
	}
	if p.Enabled() {
		t.Fatal("nil profiler reports enabled")
	}
	if p.Report() != nil {
		t.Fatal("nil profiler produced a report")
	}
	p.Reset() // no-op, must not panic
	p.Merge(New(counterClock(1)))
}

func TestNewPanicsOnNilClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) did not panic")
		}
	}()
	New(nil)
}

func TestProfilerReport(t *testing.T) {
	p := New(counterClock(5))
	for i := 0; i < 7; i++ {
		sp := p.Start(PhasePoolScan)
		sp.End()
	}
	sp := p.Start(PhaseRoute)
	sp.End()

	r := p.Report()
	if len(r.Phases) != 2 {
		t.Fatalf("report has %d phases, want 2 (only touched ones)", len(r.Phases))
	}
	scan, ok := r.PhaseByName("pool_scan")
	if !ok || scan.Count != 7 || scan.TotalNS != 35 || scan.P50NS != 5 {
		t.Fatalf("pool_scan stat %+v", scan)
	}
	if _, ok := r.PhaseByName("dispatch"); ok {
		t.Fatal("report includes untouched phase")
	}

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL has %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"phase":"pool_scan"`) {
		t.Fatalf("first JSONL line %q", lines[0])
	}

	r.Mem = &MemDelta{Before: MemSnapshot{TotalAllocBytes: 10, Mallocs: 1}, After: MemSnapshot{TotalAllocBytes: 30, Mallocs: 4}}
	buf.Reset()
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"mem"`) {
		t.Fatal("JSONL missing mem line")
	}
	if r.Mem.AllocBytes() != 20 || r.Mem.AllocCount() != 3 {
		t.Fatalf("mem delta %d/%d", r.Mem.AllocBytes(), r.Mem.AllocCount())
	}
}

func TestProfilerMerge(t *testing.T) {
	a, b := New(counterClock(3)), New(counterClock(9))
	for i := 0; i < 4; i++ {
		sp := a.Start(PhaseDispatch)
		sp.End()
	}
	sp := b.Start(PhaseDispatch)
	sp.End()
	a.Merge(b)
	h := a.Phase(PhaseDispatch)
	if h.Count() != 5 || h.Sum() != 4*3+9 {
		t.Fatalf("merged count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for ph := Phase(0); ph < NumPhases; ph++ {
		n := ph.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("phase %d has bad or duplicate name %q", ph, n)
		}
		seen[n] = true
	}
	if NumPhases.String() != "unknown" {
		t.Fatal("out-of-range phase must stringify as unknown")
	}
}

func TestReadMem(t *testing.T) {
	before := ReadMem()
	sink := make([]byte, 1<<20)
	_ = sink
	after := ReadMem()
	d := MemDelta{Before: before, After: after}
	if d.AllocBytes() < 1<<20 {
		t.Fatalf("alloc delta %d, want ≥ 1MiB", d.AllocBytes())
	}
	if after.SysBytes == 0 || after.Mallocs == 0 {
		t.Fatal("snapshot missing runtime stats")
	}
	// PeakRSSBytes may legitimately be 0 off-Linux; when present it
	// should be plausibly large (≥ 1 MiB for any Go process).
	if rss := after.PeakRSSBytes; rss != 0 && rss < 1<<20 {
		t.Fatalf("implausible peak RSS %d", rss)
	}
}

func TestParseVmHWM(t *testing.T) {
	status := []byte("Name:\tx\nVmPeak:\t  999 kB\nVmHWM:\t  2048 kB\nVmRSS:\t 1 kB\n")
	if got := parseVmHWM(status); got != 2048*1024 {
		t.Fatalf("parseVmHWM = %d, want %d", got, 2048*1024)
	}
	if got := parseVmHWM([]byte("nothing here\n")); got != 0 {
		t.Fatalf("parseVmHWM on garbage = %d, want 0", got)
	}
	if got := parseVmHWM([]byte("VmHWM:\tnot-a-number kB\n")); got != 0 {
		t.Fatalf("parseVmHWM on bad number = %d, want 0", got)
	}
}

// TestDisabledSpanZeroAllocs is the satellite contract: a disabled
// profiler scope is 0 allocs/op.
func TestDisabledSpanZeroAllocs(t *testing.T) {
	var p *Profiler
	allocs := testing.AllocsPerRun(1000, func() {
		sp := p.Start(PhaseSchedule)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span allocates %v allocs/op, want 0", allocs)
	}
}

// TestEnabledSpanZeroAllocs: even enabled scopes never allocate — the
// Span is a value and the HDR storage is preallocated.
func TestEnabledSpanZeroAllocs(t *testing.T) {
	p := New(counterClock(1))
	allocs := testing.AllocsPerRun(1000, func() {
		sp := p.Start(PhaseSchedule)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("enabled span allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkDisabledSpan measures the cost of an instrumented scope
// with profiling off (nil profiler): two nil checks, 0 allocs/op —
// cheap enough to leave in every hot path unconditionally.
func BenchmarkDisabledSpan(b *testing.B) {
	var p *Profiler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := p.Start(PhaseSchedule)
		sp.End()
	}
}

// BenchmarkEnabledSpan measures a live scope with a trivial clock:
// two clock reads plus one HDR record.
func BenchmarkEnabledSpan(b *testing.B) {
	p := New(counterClock(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := p.Start(PhaseSchedule)
		sp.End()
	}
}
