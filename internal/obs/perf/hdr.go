// Package perf is the performance-measurement leaf of the
// observability layer: a fixed-footprint HDR histogram for latency
// distributions, a nil-safe phase profiler with an injected clock, and
// process-memory snapshots. It imports only the standard library so
// every layer of the simulator — metrics, pool, scheduler, platform,
// cluster — can depend on it without cycles.
//
// Everything here is deterministic given its inputs: the histogram is
// pure arithmetic over recorded values, and the profiler never reads a
// wall clock itself — callers inject one (virtual, monotonic-counter,
// or wall time where the walltime analyzer permits it).
package perf

import (
	"math"
	"math/bits"
	"time"
)

// Log-linear bucketing: values below subCount are exact; above that,
// each power-of-two range [2^k, 2^{k+1}) is split into subCount linear
// sub-buckets, so a bucket's width never exceeds 1/subCount of its
// lower edge and any reported quantile overestimates a recorded value
// by at most a factor of 1+1/subCount (≈3.1%).
const (
	subBits  = 5
	subCount = 1 << subBits // 32 sub-buckets per power of two

	// bucketCount covers every non-negative int64: subCount exact
	// buckets plus subCount per power-of-two range 2^subBits..2^63.
	bucketCount = (64 - subBits) * subCount
)

// HDR is a streaming histogram over non-negative int64 values
// (conventionally nanoseconds) with a fixed ~15 KiB footprint.
// Record is allocation-free; Merge is bucket-wise addition, so
// merge(a,b) is bit-identical to recording the union of a's and b's
// inputs into one histogram. Not safe for concurrent use.
//
// The zero value is an empty histogram ready to record.
type HDR struct {
	counts [bucketCount]uint64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// bucketIndex maps a value to its bucket. Negative values clamp to 0.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	n := bits.Len64(u) // ≥ subBits+1
	// Shift so the top subBits+1 bits remain: u>>s ∈ [subCount, 2·subCount).
	s := uint(n - subBits - 1)
	return (n-subBits)*subCount + int(u>>s) - subCount
}

// bucketHigh is the largest value mapping to bucket idx — the value
// Quantile reports for it.
func bucketHigh(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	n := idx/subCount + subBits
	s := uint(n - subBits - 1)
	off := idx % subCount
	return int64(uint64(subCount+off+1)<<s - 1)
}

// Record adds one value. Negative values are clamped to zero (phase
// timers can observe zero-width spans under coarse clocks, never
// negative ones — but clamping keeps the histogram total-ordered under
// any input).
func (h *HDR) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// RecordN adds n occurrences of the same value in O(1) — equivalent to
// calling Record(v) n times. Callers that count repeats of one known
// value with an atomic counter (the gateway's lock-free L3 fast path)
// use it to fold the count into a histogram at scrape time.
func (h *HDR) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)] += n
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count += int64(n)
	h.sum += v * int64(n)
}

// RecordDuration records a duration in nanoseconds.
func (h *HDR) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count is the number of recorded values.
func (h *HDR) Count() int64 { return h.count }

// Sum is the exact sum of recorded values (not bucket-quantized).
func (h *HDR) Sum() int64 { return h.sum }

// Min is the exact smallest recorded value, 0 when empty.
func (h *HDR) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max is the exact largest recorded value, 0 when empty.
func (h *HDR) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean is Sum/Count, 0 when empty.
func (h *HDR) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the q-quantile (q in [0,1]) as the upper edge of the
// bucket holding the ⌈q·Count⌉-th smallest value, clamped to [Min,Max]
// so exact observed extremes are reported exactly. It is monotone
// non-decreasing in q and overestimates the true order statistic by at
// most a factor of 1+2^-5. Returns 0 when empty.
func (h *HDR) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(q) || q <= 0 {
		return h.min
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var seen int64
	for i := 0; i < bucketCount; i++ {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		seen += int64(c)
		if seen >= target {
			v := bucketHigh(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max // unreachable when counts are consistent
}

// Merge adds other's recorded population into h. Merging histograms is
// bit-identical to recording both input streams into one histogram.
func (h *HDR) Merge(other *HDR) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.count += other.count
	h.sum += other.sum
}

// Reset returns the histogram to its empty state without releasing its
// storage.
func (h *HDR) Reset() { *h = HDR{} }

// Snapshot returns an independent copy, safe to hand across goroutine
// boundaries once the source stops recording.
func (h *HDR) Snapshot() *HDR {
	cp := *h
	return &cp
}

// Buckets calls fn for every non-empty bucket in ascending value order
// with the bucket's inclusive upper edge and its count. Exporters use
// it to emit cumulative bucket series without copying the array.
func (h *HDR) Buckets(fn func(high int64, count uint64)) {
	for i := 0; i < bucketCount; i++ {
		if c := h.counts[i]; c != 0 {
			fn(bucketHigh(i), c)
		}
	}
}
