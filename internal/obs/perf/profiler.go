package perf

import "time"

// Phase identifies one instrumented hot-path phase of the simulator.
// The taxonomy is fixed and small so the profiler can hold one HDR per
// phase in a flat array with no map lookups on the hot path.
type Phase uint8

const (
	// PhaseDispatch is one event dispatch in the sim engine: pop,
	// handler, and bookkeeping (internal/sim).
	PhaseDispatch Phase = iota
	// PhaseSchedule is one scheduler decision: featurize + policy
	// (internal/platform calling platform.Scheduler.Schedule).
	PhaseSchedule
	// PhaseNNForward is one Q-network forward pass inside the MLCR
	// scheduler (internal/mlcr → internal/drl → internal/nn).
	PhaseNNForward
	// PhasePoolScan is one multi-level index scan for matching warm
	// containers (pool.AppendMatches).
	PhasePoolScan
	// PhasePoolEvict is one eviction victim selection inside pool.Add,
	// repeated until the admission fits.
	PhasePoolEvict
	// PhaseRoute is one cluster routing decision (internal/cluster).
	PhaseRoute

	// NumPhases bounds the taxonomy; new phases go above it.
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseDispatch:  "dispatch",
	PhaseSchedule:  "schedule",
	PhaseNNForward: "nn_forward",
	PhasePoolScan:  "pool_scan",
	PhasePoolEvict: "pool_evict",
	PhaseRoute:     "route",
}

// String returns the stable lower_snake name used in exports.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Clock supplies the profiler's notion of time as a monotone offset
// from an arbitrary origin. It is always injected — the profiler never
// reads wall time itself, so deterministic packages can instrument
// their hot paths and stay clean under the walltime analyzer. Callers
// that genuinely want wall time pass a closure over a monotonic
// wall-clock reading from a package where that is permitted.
type Clock func() time.Duration

// Profiler aggregates scoped timings into one HDR per phase. A nil
// *Profiler is the disabled profiler: Start and Span.End on it are
// single-branch no-ops with zero allocations, cheap enough to leave in
// hot paths unconditionally. Not safe for concurrent use — each
// platform run owns its own instance, mirroring the rest of the
// observability layer.
type Profiler struct {
	clock  Clock
	phases [NumPhases]HDR
}

// New builds a profiler around the injected clock. Panics on a nil
// clock: a Profiler that cannot read time is expressed as a nil
// *Profiler, not a broken one.
func New(clock Clock) *Profiler {
	if clock == nil {
		panic("perf: New requires a clock; use a nil *Profiler to disable profiling")
	}
	return &Profiler{clock: clock}
}

// Span is an in-flight scoped timing. The zero Span (from a disabled
// profiler) is inert; End on it does nothing. Spans are values — no
// allocation per scope.
type Span struct {
	p     *Profiler
	start time.Duration
	phase Phase
}

// Start opens a scoped timing for the phase. On a nil profiler it
// returns the inert zero Span without reading the clock.
func (p *Profiler) Start(phase Phase) Span {
	if p == nil {
		return Span{}
	}
	return Span{p: p, phase: phase, start: p.clock()}
}

// End closes the span, recording its elapsed clock offset into the
// phase histogram. Inert on the zero Span. The body is a single inlined
// nil check; the recording slow path lives in record so a disabled
// scope costs two branches and nothing else.
func (s Span) End() {
	if s.p == nil {
		return
	}
	s.p.record(s)
}

// record is End's enabled slow path, kept out of End so End stays
// within the inlining budget.
func (p *Profiler) record(s Span) {
	p.phases[s.phase].Record(int64(p.clock() - s.start))
}

// Phase exposes the live histogram for one phase (nil on a nil
// profiler or out-of-range phase). Callers must not retain it across
// the owning run's lifetime.
func (p *Profiler) Phase(phase Phase) *HDR {
	if p == nil || phase >= NumPhases {
		return nil
	}
	return &p.phases[phase]
}

// Enabled reports whether the profiler records anything.
func (p *Profiler) Enabled() bool { return p != nil }

// Clock returns the injected clock (nil on a nil profiler). Callers
// that fan work out across goroutines use it to build one private
// Profiler per shard — the Profiler itself is not concurrency-safe —
// and Merge the shards back afterwards.
func (p *Profiler) Clock() Clock {
	if p == nil {
		return nil
	}
	return p.clock
}

// Reset clears every phase histogram, keeping the clock.
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	for i := range p.phases {
		p.phases[i].Reset()
	}
}

// Merge adds other's phase populations into p (both may be nil).
func (p *Profiler) Merge(other *Profiler) {
	if p == nil || other == nil {
		return
	}
	for i := range p.phases {
		p.phases[i].Merge(&other.phases[i])
	}
}
