package perf

import (
	"bytes"
	"os"
	"runtime"
	"strconv"
)

// MemSnapshot is one point-in-time view of the process's memory, from
// runtime.ReadMemStats plus the kernel's peak-RSS high-water mark.
// ReadMem is for bracketing runs and benchmarks, not hot paths: a
// ReadMemStats call stops the world.
type MemSnapshot struct {
	// HeapAllocBytes is live heap memory at snapshot time.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// TotalAllocBytes is cumulative bytes allocated since process start.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// Mallocs is the cumulative count of heap allocations.
	Mallocs uint64 `json:"mallocs"`
	// SysBytes is total memory obtained from the OS by the runtime.
	SysBytes uint64 `json:"sys_bytes"`
	// PeakRSSBytes is the process's resident-set high-water mark
	// (VmHWM), 0 where /proc is unavailable.
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`
}

// ReadMem captures the current memory snapshot.
func ReadMem() MemSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemSnapshot{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		SysBytes:        ms.Sys,
		PeakRSSBytes:    PeakRSSBytes(),
	}
}

// PeakRSSBytes reads the kernel's VmHWM high-water mark for this
// process, or 0 when /proc/self/status is unavailable or unparseable
// (non-Linux platforms).
func PeakRSSBytes() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	return parseVmHWM(data)
}

// parseVmHWM extracts the "VmHWM: <n> kB" line from a
// /proc/<pid>/status blob, returning bytes.
func parseVmHWM(status []byte) uint64 {
	for len(status) > 0 {
		line := status
		if i := bytes.IndexByte(status, '\n'); i >= 0 {
			line, status = status[:i], status[i+1:]
		} else {
			status = nil
		}
		rest, ok := bytes.CutPrefix(line, []byte("VmHWM:"))
		if !ok {
			continue
		}
		fields := bytes.Fields(rest)
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseUint(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// MemDelta brackets a region of work with two snapshots. The deltas
// are derived from the cumulative counters, so they are exact even
// when GC ran in between.
type MemDelta struct {
	Before MemSnapshot `json:"before"`
	After  MemSnapshot `json:"after"`
}

// AllocBytes is the total bytes allocated between the snapshots.
func (d MemDelta) AllocBytes() uint64 { return d.After.TotalAllocBytes - d.Before.TotalAllocBytes }

// AllocCount is the number of heap allocations between the snapshots.
func (d MemDelta) AllocCount() uint64 { return d.After.Mallocs - d.Before.Mallocs }
