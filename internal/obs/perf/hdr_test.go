package perf

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sampleStreams are value distributions exercising exact buckets,
// log-linear buckets, and extremes.
func sampleStreams(rng *rand.Rand) map[string][]int64 {
	uniform := make([]int64, 5000)
	for i := range uniform {
		uniform[i] = rng.Int63n(5_000_000)
	}
	logNormalish := make([]int64, 5000)
	for i := range logNormalish {
		logNormalish[i] = int64(math.Exp(rng.NormFloat64()*2 + 8))
	}
	small := make([]int64, 300)
	for i := range small {
		small[i] = rng.Int63n(32) // exact-bucket region
	}
	return map[string][]int64{
		"uniform":  uniform,
		"lognorm":  logNormalish,
		"small":    small,
		"single":   {12345},
		"constant": {777, 777, 777, 777},
		"extremes": {0, 1, math.MaxInt64, math.MaxInt64 / 3, 31, 32, 33},
	}
}

func recordAll(vals []int64) *HDR {
	h := &HDR{}
	for _, v := range vals {
		h.Record(v)
	}
	return h
}

// TestHDRBucketCountsSumToCount is the conservation property: every
// recorded value lands in exactly one bucket.
func TestHDRBucketCountsSumToCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, vals := range sampleStreams(rng) {
		h := recordAll(vals)
		var sum uint64
		h.Buckets(func(_ int64, c uint64) { sum += c })
		if int64(sum) != h.Count() || h.Count() != int64(len(vals)) {
			t.Errorf("%s: bucket sum %d, Count %d, recorded %d", name, sum, h.Count(), len(vals))
		}
	}
}

// TestHDRQuantileMonotone checks Quantile is non-decreasing in q and
// stays within [Min, Max].
func TestHDRQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for name, vals := range sampleStreams(rng) {
		h := recordAll(vals)
		prev := int64(math.MinInt64)
		for q := 0.0; q <= 1.0; q += 0.001 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("%s: Quantile(%v)=%d < previous %d", name, q, v, prev)
			}
			if v < h.Min() || v > h.Max() {
				t.Fatalf("%s: Quantile(%v)=%d outside [%d,%d]", name, q, v, h.Min(), h.Max())
			}
			prev = v
		}
	}
}

// TestHDRQuantileRelativeError checks each quantile against the exact
// order statistic: the HDR answer may overestimate by at most the
// bucket bound 1/subCount and never underestimates.
func TestHDRQuantileRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for name, vals := range sampleStreams(rng) {
		h := recordAll(vals)
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(math.Ceil(q * float64(len(sorted))))
			if rank < 1 {
				rank = 1
			}
			exact := sorted[rank-1]
			got := h.Quantile(q)
			if got < exact {
				t.Errorf("%s: Quantile(%v)=%d underestimates exact %d", name, q, got, exact)
			}
			// Allowed overshoot: one bucket width, i.e. exact/subCount
			// (clamping to Max can only tighten it). Compare in float to
			// dodge int64 overflow near MaxInt64.
			if float64(got) > float64(exact)+float64(exact)/subCount {
				t.Errorf("%s: Quantile(%v)=%d > relative-error bound for exact %d", name, q, got, exact)
			}
		}
	}
}

// TestHDRMergeEqualsUnion checks merge(a,b) is bit-identical to
// recording the concatenated streams into a single histogram.
func TestHDRMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	streams := sampleStreams(rng)
	a := recordAll(streams["uniform"])
	b := recordAll(streams["lognorm"])
	union := recordAll(append(append([]int64(nil), streams["uniform"]...), streams["lognorm"]...))

	a.Merge(b)
	if *a != *union {
		t.Fatalf("merge(a,b) differs from union histogram: count %d vs %d, sum %d vs %d, min %d vs %d, max %d vs %d",
			a.Count(), union.Count(), a.Sum(), union.Sum(), a.Min(), union.Min(), a.Max(), union.Max())
	}

	// Merging an empty or nil histogram is the identity.
	before := *a
	a.Merge(&HDR{})
	a.Merge(nil)
	if *a != before {
		t.Fatal("merging empty/nil histograms changed the receiver")
	}
}

// TestHDRRecordNEqualsRepeatedRecord pins RecordN(v, n) bit-identical
// to n Record(v) calls, including against a pre-populated histogram.
func TestHDRRecordNEqualsRepeatedRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := &HDR{}, &HDR{}
	for i := 0; i < 200; i++ {
		v := rng.Int63n(1 << 40)
		n := uint64(rng.Intn(5)) // includes the n=0 no-op
		a.RecordN(v, n)
		for k := uint64(0); k < n; k++ {
			b.Record(v)
		}
	}
	if *a != *b {
		t.Fatalf("RecordN diverges from repeated Record: count %d vs %d, sum %d vs %d",
			a.Count(), b.Count(), a.Sum(), b.Sum())
	}
	a.RecordN(-7, 3) // negatives clamp to zero, as in Record
	b.Record(-7)
	b.Record(-7)
	b.Record(-7)
	if *a != *b {
		t.Fatal("RecordN negative clamping diverges from Record")
	}
}

// TestHDRExactBelowSubCount: values under subCount occupy exact
// buckets, so their quantiles are exact.
func TestHDRExactBelowSubCount(t *testing.T) {
	h := &HDR{}
	for v := int64(0); v < subCount; v++ {
		h.Record(v)
	}
	for v := int64(0); v < subCount; v++ {
		q := (float64(v) + 1) / float64(subCount)
		if got := h.Quantile(q); got != v {
			t.Errorf("Quantile(%v) = %d, want exact %d", q, got, v)
		}
	}
}

// TestHDREmptyAndNegative covers edge inputs.
func TestHDREmptyAndNegative(t *testing.T) {
	h := &HDR{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5) // clamps to 0
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative record must clamp to 0: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
}

// TestBucketEdgesConsistent: for every bucket, bucketHigh is the
// largest value mapping back to that bucket, and edges are strictly
// increasing.
func TestBucketEdgesConsistent(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < bucketCount; i++ {
		high := bucketHigh(i)
		if high <= prev && high > 0 {
			t.Fatalf("bucket %d: edge %d not increasing past %d", i, high, prev)
		}
		if high >= 0 {
			if got := bucketIndex(high); got != i {
				t.Fatalf("bucket %d: bucketIndex(high=%d) = %d", i, high, got)
			}
			if high+1 > 0 {
				if got := bucketIndex(high + 1); got != i+1 {
					t.Fatalf("bucket %d: bucketIndex(high+1=%d) = %d, want %d", i, high+1, got, i+1)
				}
			}
		}
		prev = high
	}
	if got := bucketIndex(math.MaxInt64); got >= bucketCount {
		t.Fatalf("bucketIndex(MaxInt64) = %d out of range %d", got, bucketCount)
	}
}

// BenchmarkHDRRecord proves Record is allocation-free.
func BenchmarkHDRRecord(b *testing.B) {
	h := &HDR{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i)*977 + 13)
	}
	if h.Count() != int64(b.N) {
		b.Fatal("count mismatch")
	}
}

// TestHDRRecordZeroAllocs enforces the 0 allocs/op contract in the
// regular test run (benchmarks don't run under `go test ./...`).
func TestHDRRecordZeroAllocs(t *testing.T) {
	h := &HDR{}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(4242)
	})
	if allocs != 0 {
		t.Fatalf("HDR.Record allocates %v allocs/op, want 0", allocs)
	}
}
