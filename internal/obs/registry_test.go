package obs

import (
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exposition output of a small registry
// byte-for-byte: family ordering, HELP/TYPE lines, label handling and
// histogram expansion are all load-bearing for scrapers.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests served.").Add(3)
	r.Counter(`test_warm_total{level="1"}`, "Warm starts.").Add(2)
	r.Counter(`test_warm_total{level="2"}`, "Warm starts.").Inc()
	r.Gauge("test_pool_mb", "Pool memory.").Set(512.5)
	h := r.Histogram("test_latency_seconds", "Latency.",
		[]time.Duration{10 * time.Millisecond, 100 * time.Millisecond})
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(250 * time.Millisecond)

	const want = `# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 0.305
test_latency_seconds_count 3
# HELP test_pool_mb Pool memory.
# TYPE test_pool_mb gauge
test_pool_mb 512.5
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_warm_total Warm starts.
# TYPE test_warm_total counter
test_warm_total{level="1"} 2
test_warm_total{level="2"} 1
`
	if got := r.Snapshot(); got != want {
		t.Errorf("snapshot mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// sampleLineRe matches one exposition-format sample line: metric name,
// optional label set, a space, and a number.
var sampleLineRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? ` +
		`[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$`)

// TestPrometheusFormatValid runs a lightweight exposition-format
// validator over the platform-shaped metric set: every sample line must
// parse, and every sample must be preceded by its family's TYPE line.
func TestPrometheusFormatValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("mlcr_invocations_total", "Invocations scheduled.").Add(10)
	r.Gauge("mlcr_pool_used_mb", "Idle pool memory.").Set(0)
	r.Histogram("mlcr_startup_seconds", "Startup latency.", nil).Observe(3 * time.Second)
	for _, lv := range []string{"1", "2", "3"} {
		r.Counter(`mlcr_warm_starts_total{level="`+lv+`"}`, "Warm starts by level.").Inc()
	}

	typed := map[string]bool{}
	for i, line := range strings.Split(strings.TrimSuffix(r.Snapshot(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("line %d: unknown type %q", i+1, f[3])
			}
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !sampleLineRe.MatchString(line) {
			t.Errorf("line %d: invalid sample line %q", i+1, line)
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Errorf("line %d: sample %q has no preceding TYPE", i+1, name)
		}
	}
}

// TestRegistryIdempotent verifies repeated registration returns the same
// handle, so eager registration plus hot-path pointer increments works.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.")
	b := r.Counter("x_total", "ignored second help")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared counter value = %d, want 1", b.Value())
	}
	if g1, g2 := r.Gauge("g", "G."), r.Gauge("g", "G."); g1 != g2 {
		t.Fatal("same name returned distinct gauges")
	}
}

// TestRegistryTypeConflictPanics: one base name cannot be both a counter
// and a gauge.
func TestRegistryTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter/gauge type conflict")
		}
	}()
	r := NewRegistry()
	r.Counter("dual_total", "C.")
	r.Gauge("dual_total", "G.")
}

// TestInvalidMetricNamePanics: malformed names are programmer errors.
func TestInvalidMetricNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid metric name")
		}
	}()
	NewRegistry().Counter("bad name!", "X.")
}

// TestGaugeRoundTrip exercises the atomic float bits encoding.
func TestGaugeRoundTrip(t *testing.T) {
	var g Gauge
	for _, v := range []float64{0, -1.5, 1e-9, 123456.789} {
		g.Set(v)
		if got := g.Value(); got != v {
			t.Errorf("gauge round-trip %v -> %v", v, got)
		}
	}
}
