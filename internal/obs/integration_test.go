package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"mlcr/internal/experiments"
	"mlcr/internal/fstartbench"
	"mlcr/internal/obs"
)

// runObserved replays one seeded Peak workload under Greedy-Match with
// the full observability bundle and returns the three exports.
func runObserved(t *testing.T) (trace, audit, metrics []byte, invocations int) {
	t.Helper()
	w := fstartbench.Build(fstartbench.Peak, 7, fstartbench.Options{})
	loose := experiments.CalibrateLoose(w)
	o := obs.NewObserver()
	greedy := experiments.Baselines()[3]
	if greedy.Name != "Greedy-Match" {
		t.Fatalf("baseline order changed: got %q", greedy.Name)
	}
	experiments.RunObserved(greedy, w, loose*0.5, o)

	var tb, ab bytes.Buffer
	if err := o.Recording().WriteJSONL(&tb); err != nil {
		t.Fatal(err)
	}
	if err := o.Audit.WriteJSONL(&ab); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), ab.Bytes(), []byte(o.Metrics.Snapshot()), len(w.Invocations)
}

// TestObservedRunDeterministic: two identical seeded runs produce
// byte-identical JSONL traces, audit logs and metrics snapshots — the
// repository's reproducibility bar extended to the observability layer.
func TestObservedRunDeterministic(t *testing.T) {
	t1, a1, m1, _ := runObserved(t)
	t2, a2, m2, _ := runObserved(t)
	if !bytes.Equal(t1, t2) {
		t.Error("JSONL traces of identical runs differ")
	}
	if !bytes.Equal(a1, a2) {
		t.Error("audit logs of identical runs differ")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics snapshots of identical runs differ")
	}
}

// TestObservedRunContent sanity-checks what one observed run collects:
// engine events carry meaningful names, the audit covers every
// invocation, and the headline counters line up with the workload.
func TestObservedRunContent(t *testing.T) {
	w := fstartbench.Build(fstartbench.Peak, 7, fstartbench.Options{})
	loose := experiments.CalibrateLoose(w)
	o := obs.NewObserver()
	res := experiments.RunObserved(experiments.Baselines()[3], w, loose*0.5, o)

	fired, arrivals, finishes := 0, 0, 0
	for _, ev := range o.Recording().Events() {
		if ev.Kind != obs.KindEventFired {
			continue
		}
		fired++
		switch {
		case strings.HasPrefix(ev.Detail, "arrival/"):
			arrivals++
		case strings.HasPrefix(ev.Detail, "finish/c"):
			finishes++
		default:
			t.Fatalf("engine event with unexpected name %q", ev.Detail)
		}
	}
	if fired == 0 {
		t.Fatal("no engine events traced")
	}
	if want := len(w.Invocations); arrivals != want || finishes != want {
		t.Errorf("got %d arrival / %d finish events, want %d each", arrivals, finishes, want)
	}

	if got := o.Audit.Len(); got != len(w.Invocations) {
		t.Errorf("audit has %d decisions, want %d", got, len(w.Invocations))
	}
	cold := 0
	for _, d := range o.Audit.Decisions() {
		if d.Cold {
			cold++
			if d.Chosen != -1 {
				t.Errorf("cold decision seq %d has chosen=%d, want -1", d.Seq, d.Chosen)
			}
		}
		if d.Reward > 0 {
			t.Errorf("decision seq %d has positive reward %v", d.Seq, d.Reward)
		}
	}
	if cold != res.Metrics.ColdStarts() {
		t.Errorf("audit says %d cold starts, metrics say %d", cold, res.Metrics.ColdStarts())
	}

	snap := o.Metrics.Snapshot()
	for _, want := range []string{
		"mlcr_invocations_total",
		"mlcr_cold_starts_total",
		"mlcr_startup_seconds_bucket",
		`mlcr_warm_starts_total{level="1"}`,
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
}
