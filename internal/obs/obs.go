// Package obs is the repository's observability layer, four pillars
// shared by the simulator, the HTTP gateway and the training loop:
//
//   - a structured trace: typed events (Event) with virtual timestamps,
//     collected by a pluggable Tracer and exportable as JSONL or as the
//     Chrome trace_event format (viewable in chrome://tracing/Perfetto);
//   - a metrics registry (Registry): named counters, gauges, histograms
//     and HDR-backed summaries with allocation-free hot-path updates, a
//     deterministic text snapshot and Prometheus exposition-format
//     export;
//   - a scheduler decision audit log (Audit): for every invocation, the
//     candidate set the policy saw, per-candidate match levels and prune
//     reasons, the chosen action and the realized reward;
//   - a phase profiler (obs/perf.Profiler): scoped timers with an
//     injected clock around the simulator's hot phases, aggregated into
//     fixed-footprint HDR histograms and exported as a per-run
//     PerfReport plus Prometheus summaries (see PublishPerf).
//
// All four are optional and nil-safe: a disabled Observer costs a nil
// check per instrumentation point, so determinism and performance of
// unobserved runs are unchanged (see BenchmarkDisabledTracer and
// perf.BenchmarkDisabledSpan).
package obs

import (
	"time"

	"mlcr/internal/obs/perf"
)

// Kind identifies the type of a trace event.
type Kind uint8

const (
	// KindEventFired is emitted by the simulation engine for every event
	// it executes; Detail holds the event name (e.g. "arrival/12").
	KindEventFired Kind = iota + 1
	// KindInvocationArrived marks an invocation reaching the platform.
	KindInvocationArrived
	// KindMatchAttempted records multi-level matching of one idle
	// container against the arriving invocation; Detail holds the prune
	// reason (PruneNoMatch, PruneWorseThanCold) or "" for a viable
	// candidate, Dur the estimated startup of reusing it.
	KindMatchAttempted
	// KindScheduleDecided records the scheduler's decision; Action is
	// the chosen container ID or -1 for a cold start, Dur the realized
	// startup latency.
	KindScheduleDecided
	// KindContainerCreated marks a cold-started sandbox; Dur is the
	// cold-start latency.
	KindContainerCreated
	// KindContainerReused marks a warm start; Level is the match level,
	// Dur the warm-start latency.
	KindContainerReused
	// KindContainerEvicted marks a container leaving the pool
	// involuntarily; Detail holds the reason (capacity, expired,
	// rejected, oversize).
	KindContainerEvicted
	// KindVolumeSwapped records a container-cleaner repack on a
	// cross-function reuse.
	KindVolumeSwapped
	// KindTrainStep reports one DQN gradient update; Step is the update
	// counter, Value the mean absolute TD error.
	KindTrainStep
)

// String returns the snake_case kind name used in JSONL exports.
func (k Kind) String() string {
	switch k {
	case KindEventFired:
		return "event_fired"
	case KindInvocationArrived:
		return "invocation_arrived"
	case KindMatchAttempted:
		return "match_attempted"
	case KindScheduleDecided:
		return "schedule_decided"
	case KindContainerCreated:
		return "container_created"
	case KindContainerReused:
		return "container_reused"
	case KindContainerEvicted:
		return "container_evicted"
	case KindVolumeSwapped:
		return "volume_swapped"
	case KindTrainStep:
		return "train_step"
	default:
		return "unknown"
	}
}

// Prune reasons attached to KindMatchAttempted events and audit
// candidates.
const (
	// PruneNoMatch means the OS level differs: reuse is impossible.
	PruneNoMatch = "no-match"
	// PruneWorseThanCold means the estimated warm start costs at least
	// as much as a cold start (the mask's "manifestly erroneous" rule).
	PruneWorseThanCold = "worse-than-cold"
)

// Eviction reasons attached to KindContainerEvicted events.
const (
	// EvictCapacity means the container was displaced to make room.
	EvictCapacity = "capacity"
	// EvictExpired means the container exceeded its idle TTL.
	EvictExpired = "expired"
	// EvictRejected means a keep-warm request was refused by a full pool.
	EvictRejected = "rejected"
	// EvictOversize means the container exceeds the whole pool capacity.
	EvictOversize = "oversize"
)

// Event is one structured trace record. It is a flat struct — no
// interfaces, no allocations — so constructing and discarding one when
// tracing is disabled is nearly free. Fields not applicable to a Kind
// are left zero; Seq and Fn use -1 for "not applicable" since 0 is a
// valid sequence number and function ID.
type Event struct {
	Kind Kind
	// At is the virtual timestamp of the event.
	At time.Duration
	// Seq is the invocation sequence number (-1 when not applicable).
	Seq int
	// Fn is the function ID (-1 when not applicable).
	Fn int
	// Container is the container ID (0 when not applicable).
	Container int
	// Level is the match level (0 = cold/no-match, 1..3 = L1..L3).
	Level int
	// Action is the scheduler's chosen action: container ID or -1 cold.
	Action int
	// Cold reports whether the decision cold-started a sandbox.
	Cold bool
	// Dur is a duration payload (estimated or realized startup).
	Dur time.Duration
	// Value is a scalar payload (reward, TD error).
	Value float64
	// Step is the training-step counter for KindTrainStep.
	Step int
	// Detail is a short string payload: engine event name, prune reason
	// or eviction reason.
	Detail string
}

// Tracer receives trace events. Implementations must tolerate events
// arriving from a single goroutine at a time per emitting component; the
// Recorder is additionally safe for fully concurrent use.
type Tracer interface {
	Emit(Event)
}

// Observer bundles the four pillars. Any field may be nil to disable
// that pillar; a nil *Observer disables everything. All methods are
// nil-receiver safe so instrumented code needs no nil checks beyond the
// guards below.
type Observer struct {
	Tracer  Tracer
	Metrics *Registry
	Audit   *Audit
	// Perf aggregates scoped hot-path timings. Unlike the other pillars
	// it needs a clock, so NewObserver leaves it nil; enable it with
	// perf.New and an injected clock (a deterministic counter in tests,
	// wall time in the gateway).
	Perf *perf.Profiler
}

// NewObserver returns an Observer with the three clock-free pillars
// enabled: a fresh Recorder, Registry and Audit. Perf stays nil until
// the caller injects a clock.
func NewObserver() *Observer {
	return &Observer{Tracer: NewRecorder(), Metrics: NewRegistry(), Audit: &Audit{}}
}

// Emit forwards the event to the tracer; a no-op when disabled.
func (o *Observer) Emit(ev Event) {
	if o == nil || o.Tracer == nil {
		return
	}
	o.Tracer.Emit(ev)
}

// Tracing reports whether trace events are being collected. Hot paths
// use it to skip event construction entirely.
func (o *Observer) Tracing() bool { return o != nil && o.Tracer != nil }

// Auditing reports whether scheduler decisions are being audited.
func (o *Observer) Auditing() bool { return o != nil && o.Audit != nil }

// Recording returns the Tracer as a *Recorder when it is one, for
// exporting collected events; nil otherwise.
func (o *Observer) Recording() *Recorder {
	if o == nil {
		return nil
	}
	r, _ := o.Tracer.(*Recorder)
	return r
}

// Perfing reports whether hot-path phases are being profiled.
func (o *Observer) Perfing() bool { return o != nil && o.Perf != nil }

// Profiler returns the perf pillar (nil when disabled), for handing to
// components that take a *perf.Profiler directly.
func (o *Observer) Profiler() *perf.Profiler {
	if o == nil {
		return nil
	}
	return o.Perf
}

// PublishPerf copies the profiler's per-phase aggregates into the
// metrics registry as mlcr_phase_seconds summaries (one series per
// touched phase, quantile labels 0.5/0.9/0.99/0.999). A no-op unless
// both the Perf and Metrics pillars are enabled. Callers invoke it at
// run end or scrape time; it is not a hot-path method.
func (o *Observer) PublishPerf() {
	if o == nil || o.Perf == nil || o.Metrics == nil {
		return
	}
	for ph := perf.Phase(0); ph < perf.NumPhases; ph++ {
		h := o.Perf.Phase(ph)
		if h.Count() == 0 {
			continue
		}
		name := `mlcr_phase_seconds{phase="` + ph.String() + `"}`
		o.Metrics.Summary(name, "Hot-path phase latency by profiler phase.").SetHDR(h)
	}
}
