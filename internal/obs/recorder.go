package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Recorder is a Tracer that retains every event in memory for later
// export. It is safe for concurrent use (the HTTP gateway emits under
// its own lock but exports concurrently).
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Tracer.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// jsonEvent is the JSONL wire form of an Event. Every field is always
// present so two identical runs produce byte-identical output.
type jsonEvent struct {
	Kind      string  `json:"kind"`
	AtUS      int64   `json:"at_us"`
	Seq       int     `json:"seq"`
	Fn        int     `json:"fn"`
	Container int     `json:"container"`
	Level     int     `json:"level"`
	Action    int     `json:"action"`
	Cold      bool    `json:"cold"`
	DurUS     int64   `json:"dur_us"`
	Value     float64 `json:"value"`
	Step      int     `json:"step"`
	Detail    string  `json:"detail"`
}

// WriteJSONL writes one JSON object per event, in emission order. The
// encoding is deterministic: fixed field order, all fields present.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range r.Events() {
		je := jsonEvent{
			Kind:      ev.Kind.String(),
			AtUS:      ev.At.Microseconds(),
			Seq:       ev.Seq,
			Fn:        ev.Fn,
			Container: ev.Container,
			Level:     ev.Level,
			Action:    ev.Action,
			Cold:      ev.Cold,
			DurUS:     ev.Dur.Microseconds(),
			Value:     ev.Value,
			Step:      ev.Step,
			Detail:    ev.Detail,
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("obs: jsonl: %w", err)
		}
	}
	return bw.Flush()
}

// Chrome trace_event mapping. Thread IDs within the single trace
// process: tid 0 is the simulation engine, tid 1 the scheduler, and
// each container gets its own row at containerTIDBase+ID so startup
// spans of concurrent containers render side by side.
const (
	engineTID        = 0
	schedulerTID     = 1
	containerTIDBase = 10
)

// chromeEvent is one entry of the Chrome trace_event "traceEvents"
// array (JSON Array Format).
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorded events in Chrome trace_event
// JSON, openable in chrome://tracing or Perfetto. Instant events map to
// ph "i", container startups to complete spans ("X") on the container's
// own row, and TrainStep TD errors to a counter track ("C").
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		threadName(engineTID, "sim-engine"),
		threadName(schedulerTID, "scheduler"),
	}}
	// Name each container row; sorted for deterministic output.
	seen := map[int]bool{}
	var ids []int
	for _, ev := range events {
		switch ev.Kind {
		case KindContainerCreated, KindContainerReused, KindContainerEvicted, KindVolumeSwapped:
			if !seen[ev.Container] {
				seen[ev.Container] = true
				ids = append(ids, ev.Container)
			}
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		out.TraceEvents = append(out.TraceEvents, threadName(containerTIDBase+id, "c"+strconv.Itoa(id)))
	}
	for _, ev := range events {
		if ce, ok := toChrome(ev); ok {
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: chrome trace: %w", err)
	}
	return nil
}

func threadName(tid int, name string) chromeEvent {
	return chromeEvent{
		Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
		Args: map[string]any{"name": name},
	}
}

func toChrome(ev Event) (chromeEvent, bool) {
	ts := ev.At.Microseconds()
	switch ev.Kind {
	case KindEventFired:
		return chromeEvent{Name: ev.Detail, Ph: "i", TS: ts, Pid: 1, Tid: engineTID, Cat: "engine", Scope: "t"}, true
	case KindInvocationArrived:
		return chromeEvent{
			Name: "invoke fn" + strconv.Itoa(ev.Fn), Ph: "i", TS: ts, Pid: 1, Tid: schedulerTID,
			Cat: "scheduler", Scope: "t", Args: map[string]any{"seq": ev.Seq},
		}, true
	case KindMatchAttempted:
		args := map[string]any{"level": ev.Level, "est_us": ev.Dur.Microseconds()}
		if ev.Detail != "" {
			args["pruned"] = ev.Detail
		}
		return chromeEvent{
			Name: "match c" + strconv.Itoa(ev.Container), Ph: "i", TS: ts, Pid: 1, Tid: schedulerTID,
			Cat: "scheduler", Scope: "t", Args: args,
		}, true
	case KindScheduleDecided:
		return chromeEvent{
			Name: "decide fn" + strconv.Itoa(ev.Fn), Ph: "i", TS: ts, Pid: 1, Tid: schedulerTID,
			Cat: "scheduler", Scope: "t",
			Args: map[string]any{"action": ev.Action, "cold": ev.Cold, "level": ev.Level, "startup_us": ev.Dur.Microseconds()},
		}, true
	case KindContainerCreated:
		return chromeEvent{
			Name: "cold-start fn" + strconv.Itoa(ev.Fn), Ph: "X", TS: ts, Dur: ev.Dur.Microseconds(),
			Pid: 1, Tid: containerTIDBase + ev.Container, Cat: "container",
			Args: map[string]any{"seq": ev.Seq},
		}, true
	case KindContainerReused:
		return chromeEvent{
			Name: "reuse L" + strconv.Itoa(ev.Level) + " fn" + strconv.Itoa(ev.Fn), Ph: "X", TS: ts,
			Dur: ev.Dur.Microseconds(), Pid: 1, Tid: containerTIDBase + ev.Container, Cat: "container",
			Args: map[string]any{"seq": ev.Seq},
		}, true
	case KindContainerEvicted:
		return chromeEvent{
			Name: "evict (" + ev.Detail + ")", Ph: "i", TS: ts, Pid: 1,
			Tid: containerTIDBase + ev.Container, Cat: "pool", Scope: "t",
		}, true
	case KindVolumeSwapped:
		return chromeEvent{
			Name: "volume-swap", Ph: "i", TS: ts, Pid: 1,
			Tid: containerTIDBase + ev.Container, Cat: "cleaner", Scope: "t",
			Args: map[string]any{"detail": ev.Detail},
		}, true
	case KindTrainStep:
		// Counter track: Perfetto plots the TD error over train steps.
		return chromeEvent{
			Name: "td_error", Ph: "C", TS: int64(ev.Step), Pid: 1, Tid: schedulerTID,
			Args: map[string]any{"td": ev.Value},
		}, true
	default:
		return chromeEvent{}, false
	}
}
