package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// sampleEvents returns a small trace covering every event kind.
func sampleEvents() []Event {
	return []Event{
		{Kind: KindEventFired, At: 0, Seq: -1, Fn: -1, Detail: "arrival/0"},
		{Kind: KindInvocationArrived, At: 0, Seq: 0, Fn: 5},
		{Kind: KindMatchAttempted, At: 0, Seq: 0, Fn: 5, Container: 1, Level: 2, Dur: 800 * time.Millisecond},
		{Kind: KindMatchAttempted, At: 0, Seq: 0, Fn: 5, Container: 2, Level: 0, Detail: PruneNoMatch},
		{Kind: KindScheduleDecided, At: 0, Seq: 0, Fn: 5, Container: 1, Level: 2, Action: 1, Dur: 800 * time.Millisecond},
		{Kind: KindContainerReused, At: 0, Seq: 0, Fn: 5, Container: 1, Level: 2, Dur: 800 * time.Millisecond},
		{Kind: KindContainerCreated, At: time.Second, Seq: 1, Fn: 6, Container: 3, Cold: true, Dur: 4 * time.Second},
		{Kind: KindContainerEvicted, At: 2 * time.Second, Seq: -1, Fn: 6, Container: 2, Detail: EvictCapacity},
		{Kind: KindVolumeSwapped, At: 3 * time.Second, Seq: -1, Fn: 7, Container: 1, Level: 2, Detail: "from=fn5 unmounts=1 mounts=2"},
		{Kind: KindTrainStep, Seq: -1, Fn: -1, Step: 42, Value: 0.125},
	}
}

// TestKindStrings: every kind has a distinct snake_case name.
func TestKindStrings(t *testing.T) {
	seen := map[string]Kind{}
	for k := KindEventFired; k <= KindTrainStep; k++ {
		s := k.String()
		if s == "unknown" || s == "" {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, s)
		}
		seen[s] = k
	}
	if Kind(0).String() != "unknown" {
		t.Error("zero kind should stringify as unknown")
	}
}

// TestWriteJSONLDeterministic: the JSONL export is byte-stable across
// writes and every line is a JSON object with the full fixed field set.
func TestWriteJSONLDeterministic(t *testing.T) {
	rec := NewRecorder()
	for _, ev := range sampleEvents() {
		rec.Emit(ev)
	}
	var a, b bytes.Buffer
	if err := rec.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two JSONL exports of the same recorder differ")
	}

	lines := strings.Split(strings.TrimSuffix(a.String(), "\n"), "\n")
	if len(lines) != rec.Len() {
		t.Fatalf("got %d lines, want %d", len(lines), rec.Len())
	}
	wantKeys := []string{"kind", "at_us", "seq", "fn", "container", "level",
		"action", "cold", "dur_us", "value", "step", "detail"}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
		for _, k := range wantKeys {
			if _, ok := m[k]; !ok {
				t.Errorf("line %d missing key %q", i+1, k)
			}
		}
	}
}

// TestWriteChromeTrace: the export is valid Chrome trace_event JSON with
// thread metadata and one renderable entry per event.
func TestWriteChromeTrace(t *testing.T) {
	rec := NewRecorder()
	evs := sampleEvents()
	for _, ev := range evs {
		rec.Emit(ev)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", trace.DisplayTimeUnit)
	}
	names := map[string]bool{}
	meta := 0
	for i, ce := range trace.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ce[k]; !ok {
				t.Fatalf("traceEvents[%d] missing %q: %v", i, k, ce)
			}
		}
		switch ce["ph"] {
		case "M":
			meta++
			args := ce["args"].(map[string]any)
			names[args["name"].(string)] = true
		case "i", "X", "C":
		default:
			t.Errorf("traceEvents[%d] has unexpected phase %v", i, ce["ph"])
		}
	}
	if len(trace.TraceEvents)-meta != len(evs) {
		t.Errorf("got %d non-metadata entries, want %d", len(trace.TraceEvents)-meta, len(evs))
	}
	// Engine, scheduler and the touched containers each get a named row.
	for _, want := range []string{"sim-engine", "scheduler", "c1", "c2", "c3"} {
		if !names[want] {
			t.Errorf("missing thread_name metadata for %q", want)
		}
	}
}

// TestNilObserver: a nil *Observer and an empty Observer are inert but
// safe at every instrumentation point.
func TestNilObserver(t *testing.T) {
	var o *Observer
	o.Emit(Event{Kind: KindEventFired})
	if o.Tracing() || o.Auditing() {
		t.Error("nil observer claims to be active")
	}
	if o.Recording() != nil {
		t.Error("nil observer returned a recorder")
	}

	empty := &Observer{}
	empty.Emit(Event{Kind: KindEventFired})
	if empty.Tracing() || empty.Auditing() {
		t.Error("empty observer claims to be active")
	}
	if empty.Recording() != nil {
		t.Error("empty observer returned a recorder")
	}
}

// TestAuditJSONLDeterministic: the audit export is byte-stable and
// round-trips through JSON.
func TestAuditJSONLDeterministic(t *testing.T) {
	a := &Audit{}
	a.Record(Decision{
		Seq: 0, Fn: 5, AtUS: 0,
		Candidates: []Candidate{
			{Container: 1, Level: 2, EstUS: 800_000},
			{Container: 2, Level: 0, EstUS: 9_000_000, Pruned: PruneNoMatch},
		},
		Chosen: 1, Level: 2, StartupUS: 800_000, Reward: -0.8,
	})
	a.Record(Decision{Seq: 1, Fn: 6, AtUS: 1_000_000, Chosen: -1, Cold: true,
		StartupUS: 4_000_000, Reward: -4})

	var x, y bytes.Buffer
	if err := a.WriteJSONL(&x); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteJSONL(&y); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x.Bytes(), y.Bytes()) {
		t.Fatal("two audit exports differ")
	}
	for i, line := range strings.Split(strings.TrimSuffix(x.String(), "\n"), "\n") {
		var d Decision
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("audit line %d does not round-trip: %v", i+1, err)
		}
	}
}
