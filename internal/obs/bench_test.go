package obs_test

import (
	"testing"

	"mlcr/internal/experiments"
	"mlcr/internal/fstartbench"
	"mlcr/internal/obs"
	"mlcr/internal/workload"
)

func benchWorkload() (workload.Workload, float64) {
	w := fstartbench.Build(fstartbench.Peak, 7, fstartbench.Options{})
	return w, experiments.CalibrateLoose(w) * 0.5
}

// BenchmarkDisabledTracer measures a full platform replay with a nil
// Observer — the cost every unobserved run pays for the instrumentation
// points. Compare against BenchmarkEnabledTracer and the pre-obs
// scheduling benchmarks in bench_test.go; the disabled path must stay
// within noise (<5%).
func BenchmarkDisabledTracer(b *testing.B) {
	w, poolMB := benchWorkload()
	greedy := experiments.Baselines()[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunObserved(greedy, w, poolMB, nil)
	}
}

// BenchmarkEnabledTracer is the same replay with all three pillars
// collecting, to quantify the cost of full observability.
func BenchmarkEnabledTracer(b *testing.B) {
	w, poolMB := benchWorkload()
	greedy := experiments.Baselines()[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunObserved(greedy, w, poolMB, obs.NewObserver())
	}
}
