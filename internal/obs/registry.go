package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mlcr/internal/metrics"
	"mlcr/internal/obs/perf"
)

// Counter is a monotonically increasing integer metric. Updates are
// atomic and allocation-free, so counters can sit on scheduling hot
// paths and be scraped concurrently by the gateway.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a duration histogram backed by metrics.Histogram, made
// safe for the gateway's concurrent observe/scrape with a small mutex.
type Histogram struct {
	mu sync.Mutex
	h  *metrics.Histogram
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.h.Observe(d)
	h.mu.Unlock()
}

// snapshot copies the bucket state under the lock.
func (h *Histogram) snapshot() (bounds []time.Duration, counts []int, sum time.Duration, total int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Boundaries(), h.h.Counts(), h.h.Sum(), h.h.Count()
}

// summaryQuantiles are the quantile labels every Summary exports.
var summaryQuantiles = [...]float64{0.5, 0.9, 0.99, 0.999}

// Summary is a quantile summary backed by a perf.HDR: fixed ~15 KiB
// footprint regardless of sample count, ≤3.1% quantile error, exported
// in the Prometheus summary format. It is fed either by Observe (live
// gateway paths) or wholesale via SetHDR (per-run profiler exports).
// A small mutex makes observe/scrape safe concurrently.
type Summary struct {
	mu sync.Mutex
	h  perf.HDR
}

// Observe records one duration sample.
func (s *Summary) Observe(d time.Duration) {
	s.mu.Lock()
	s.h.RecordDuration(d)
	s.mu.Unlock()
}

// SetHDR replaces the summary's aggregate state with a copy of h,
// so per-run profiler histograms can be published without the summary
// aliasing live recording state.
func (s *Summary) SetHDR(h *perf.HDR) {
	if h == nil {
		return
	}
	s.mu.Lock()
	s.h = *h
	s.mu.Unlock()
}

// snapshot copies the HDR under the lock.
func (s *Summary) snapshot() perf.HDR {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h
}

// metricName validates Prometheus metric names; labels, when present,
// follow as a {name="value",...} suffix.
var (
	baseNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelsRe   = regexp.MustCompile(`^\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\}$`)
)

// splitName separates "name{label="v"}" into base name and label
// suffix, panicking on malformed names (a programmer error).
func splitName(name string) (base, labels string) {
	base = name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i:]
		if !labelsRe.MatchString(labels) {
			panic(fmt.Sprintf("obs: invalid metric labels %q", labels))
		}
	}
	if !baseNameRe.MatchString(base) {
		panic(fmt.Sprintf("obs: invalid metric name %q", base))
	}
	return base, labels
}

// Registry holds named metrics. Registration is idempotent: asking for
// an existing name returns the same handle, so callers can register
// eagerly and increment via the returned pointer with zero lookups on
// the hot path.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	summaries map[string]*Summary
	help      map[string]string // base name -> help text
	typ       map[string]string // base name -> prometheus type
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		hists:     map[string]*Histogram{},
		summaries: map[string]*Summary{},
		help:      map[string]string{},
		typ:       map[string]string{},
	}
}

func (r *Registry) register(name, help, typ string) string {
	base, _ := splitName(name)
	if prev, ok := r.typ[base]; ok && prev != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", base, prev, typ))
	}
	r.typ[base] = typ
	if _, ok := r.help[base]; !ok {
		r.help[base] = help
	}
	return base
}

// Counter returns the counter with the given name (which may carry a
// {label="value"} suffix), creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the duration histogram with the given name,
// creating it on first use with the given bucket boundaries (nil means
// the standard latency buckets of metrics.NewLatencyHistogram).
func (r *Registry) Histogram(name, help string, boundaries []time.Duration) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, "histogram")
	h, ok := r.hists[name]
	if !ok {
		var mh *metrics.Histogram
		if boundaries == nil {
			mh = metrics.NewLatencyHistogram()
		} else {
			mh = metrics.NewHistogram(boundaries)
		}
		h = &Histogram{h: mh}
		r.hists[name] = h
	}
	return h
}

// Summary returns the quantile summary with the given name, creating
// it on first use.
func (r *Registry) Summary(name, help string) *Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, "summary")
	s, ok := r.summaries[name]
	if !ok {
		s = &Summary{}
		r.summaries[name] = s
	}
	return s
}

// Snapshot renders the registry in Prometheus exposition format and
// returns it as a string. The output is deterministic: families sorted
// by base name, series sorted by full name.
func (r *Registry) Snapshot() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

// WritePrometheus writes all metrics in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type series struct {
		name string
		kind string // counter | gauge | histogram
	}
	families := map[string][]series{}
	for name := range r.counters {
		base, _ := splitName(name)
		families[base] = append(families[base], series{name, "counter"})
	}
	for name := range r.gauges {
		base, _ := splitName(name)
		families[base] = append(families[base], series{name, "gauge"})
	}
	for name := range r.hists {
		base, _ := splitName(name)
		families[base] = append(families[base], series{name, "histogram"})
	}
	for name := range r.summaries {
		base, _ := splitName(name)
		families[base] = append(families[base], series{name, "summary"})
	}
	bases := make([]string, 0, len(families))
	for base := range families {
		bases = append(bases, base)
	}
	sort.Strings(bases)

	bw := bufio.NewWriter(w)
	for _, base := range bases {
		ss := families[base]
		sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
		if help := r.help[base]; help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", base, help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", base, r.typ[base])
		for _, s := range ss {
			switch s.kind {
			case "counter":
				fmt.Fprintf(bw, "%s %d\n", s.name, r.counters[s.name].Value())
			case "gauge":
				fmt.Fprintf(bw, "%s %s\n", s.name, formatFloat(r.gauges[s.name].Value()))
			case "histogram":
				writeHistogram(bw, s.name, r.hists[s.name])
			case "summary":
				writeSummary(bw, s.name, r.summaries[s.name])
			}
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

// writeHistogram expands one histogram into cumulative _bucket series
// plus _sum and _count, with le boundaries in seconds.
func writeHistogram(w io.Writer, name string, h *Histogram) {
	base, labels := splitName(name)
	bounds, counts, sum, total := h.snapshot()
	joined := func(extra string) string {
		if labels == "" {
			return "{" + extra + "}"
		}
		return labels[:len(labels)-1] + "," + extra + "}"
	}
	cum := 0
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", base, joined(`le="`+formatFloat(b.Seconds())+`"`), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", base, joined(`le="+Inf"`), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(sum.Seconds()))
	fmt.Fprintf(w, "%s_count%s %d\n", base, labels, total)
}

// writeSummary expands one summary into quantile series plus _sum and
// _count, with values in seconds (HDR records nanoseconds).
func writeSummary(w io.Writer, name string, s *Summary) {
	base, labels := splitName(name)
	h := s.snapshot()
	joined := func(extra string) string {
		if labels == "" {
			return "{" + extra + "}"
		}
		return labels[:len(labels)-1] + "," + extra + "}"
	}
	for _, q := range summaryQuantiles {
		v := float64(h.Quantile(q)) / 1e9
		fmt.Fprintf(w, "%s%s %s\n", base, joined(`quantile="`+formatFloat(q)+`"`), formatFloat(v))
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(float64(h.Sum())/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count())
}

// formatFloat renders a float deterministically ('g', shortest).
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
