package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Candidate is one idle container considered for an invocation: the
// container the decision audit shows the policy saw, with its match
// level, estimated warm-start cost and (when pruned by the action mask)
// the reason it was never offered.
type Candidate struct {
	Container int `json:"container"`
	// Level is the match level (0 = no match, 1..3 = L1..L3).
	Level int `json:"level"`
	// EstUS is the estimated startup of reusing this container, in
	// microseconds.
	EstUS int64 `json:"est_us"`
	// Pruned is "" for a viable candidate, otherwise PruneNoMatch or
	// PruneWorseThanCold.
	Pruned string `json:"pruned,omitempty"`
}

// Decision is the full audit record of one scheduling decision — the
// exact data needed to debug the DQN action mask and to compare
// policies decision-by-decision.
type Decision struct {
	Seq int `json:"seq"`
	Fn  int `json:"fn"`
	// AtUS is the invocation's virtual arrival time in microseconds.
	AtUS int64 `json:"at_us"`
	// Candidates is every idle pool container at decision time, viable
	// and pruned, in deterministic pool order.
	Candidates []Candidate `json:"candidates"`
	// Chosen is the reused container's ID, or -1 for a cold start.
	Chosen int  `json:"chosen"`
	Cold   bool `json:"cold"`
	// Level is the realized match level (0 when cold).
	Level int `json:"level"`
	// StartupUS is the realized startup latency in microseconds.
	StartupUS int64 `json:"startup_us"`
	// Reward is the paper's unscaled reward signal, -startup in seconds.
	Reward float64 `json:"reward"`
}

// Audit is the scheduler decision audit log: an append-only sequence of
// Decisions in arrival order. Safe for concurrent record/export.
type Audit struct {
	mu        sync.Mutex
	decisions []Decision
}

// Record appends one decision.
func (a *Audit) Record(d Decision) {
	a.mu.Lock()
	a.decisions = append(a.decisions, d)
	a.mu.Unlock()
}

// Len returns the number of recorded decisions.
func (a *Audit) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.decisions)
}

// Decisions returns a copy of the recorded decisions in arrival order.
func (a *Audit) Decisions() []Decision {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Decision(nil), a.decisions...)
}

// WriteJSONL writes one JSON object per decision in arrival order. The
// encoding is deterministic, so two identical seeded runs produce
// byte-identical logs.
func (a *Audit) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range a.Decisions() {
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("obs: audit: %w", err)
		}
	}
	return bw.Flush()
}
