package experiments

import (
	"fmt"
	"time"

	"mlcr/internal/image"
	"mlcr/internal/platform"
	"mlcr/internal/policy"
	"mlcr/internal/report"
	"mlcr/internal/workload"
)

// Fig2Result contrasts the best-effort greedy policy (Policy1) with a
// workload-aware optimal assignment (Policy2) on the Figure 2 scenario.
type Fig2Result struct {
	GreedyTotal  time.Duration
	OptimalTotal time.Duration
	GreedyRows   []Fig2Row
}

// Fig2Row is one invocation's outcome under the greedy policy.
type Fig2Row struct {
	Seq     int
	Fn      string
	Cold    bool
	Startup time.Duration
}

// fig2Workload builds the scenario: two warm containers exist (one with
// an expensive ML runtime, one with a cheap web runtime); a web function
// then arrives, followed by the ML function. The greedy policy commits
// the ML container to the web function and pays the huge runtime pull
// again; the optimal plan keeps it intact.
func fig2Workload() workload.Workload {
	mk := func(id int, rt string, rtPullMB float64) *workload.Function {
		ps := []image.Package{
			{Name: "debian", Version: "11", Level: image.OS, SizeMB: 50, Pull: 2 * time.Second, Install: 250 * time.Millisecond},
			{Name: "python", Version: "3.9", Level: image.Language, SizeMB: 49, Pull: 1960 * time.Millisecond, Install: 245 * time.Millisecond},
			{Name: rt, Version: "1", Level: image.Runtime, SizeMB: rtPullMB,
				Pull:    time.Duration(rtPullMB * float64(40*time.Millisecond)),
				Install: time.Duration(rtPullMB * float64(5*time.Millisecond))},
		}
		return &workload.Function{
			ID: id, Name: rt, Image: image.NewImage(rt, ps...),
			Create: 300 * time.Millisecond, Clean: 60 * time.Millisecond,
			RuntimeInit: 300 * time.Millisecond, FunctionInit: 50 * time.Millisecond,
			Exec: 200 * time.Millisecond, MemoryMB: 256,
		}
	}
	fWeb1 := mk(1, "web1", 8)
	fML := mk(2, "ml", 480)
	fWeb2 := mk(3, "web2", 8)
	fns := []*workload.Function{fWeb1, fML, fWeb2}
	gap := 40 * time.Second
	order := []*workload.Function{fWeb1, fML, fWeb2, fML}
	invs := make([]workload.Invocation, len(order))
	for i, f := range order {
		invs[i] = workload.Invocation{Seq: i, Fn: f, Arrival: time.Duration(i+1) * gap, Exec: f.Exec}
	}
	return workload.Workload{Name: "fig2", Functions: fns, Invocations: invs}
}

// Fig2 runs the scenario under Greedy-Match and under an exhaustive
// optimal plan, returning both totals.
func Fig2() Fig2Result {
	w := fig2Workload()
	g := policy.NewGreedyMatch()
	gRes := platform.New(platform.Config{PoolCapacityMB: 4096, Evictor: g.Evictor()}, g).Run(w)

	res := Fig2Result{
		GreedyTotal:  gRes.Metrics.TotalStartup(),
		OptimalTotal: OptimalTotal(w, 4096),
	}
	for _, s := range gRes.Metrics.Samples() {
		res.GreedyRows = append(res.GreedyRows, Fig2Row{
			Seq: s.Seq, Fn: w.Invocations[s.Seq].Fn.Name, Cold: s.Cold, Startup: s.Startup,
		})
	}
	return res
}

// Table renders the comparison.
func (r Fig2Result) Table() *report.Table {
	t := &report.Table{
		Title:  "Fig 2 — best-effort greedy (Policy1) vs workload-aware optimal (Policy2)",
		Header: []string{"inv", "function", "start", "latency"},
	}
	for _, row := range r.GreedyRows {
		kind := "warm"
		if row.Cold {
			kind = "cold"
		}
		t.AddRow(row.Seq, row.Fn, kind, row.Startup)
	}
	t.Caption = fmt.Sprintf("greedy total %s vs optimal total %s (%.0f%% worse)",
		report.FmtDur(r.GreedyTotal), report.FmtDur(r.OptimalTotal),
		100*(float64(r.GreedyTotal)-float64(r.OptimalTotal))/float64(r.OptimalTotal))
	return t
}

// OptimalTotal exhaustively searches per-invocation choices (cold start
// or reuse of any live prior container) and returns the minimum total
// startup latency. Exponential in the invocation count — use only on
// example-sized workloads.
func OptimalTotal(w workload.Workload, poolMB float64) time.Duration {
	n := len(w.Invocations)
	best := time.Duration(1<<62 - 1)
	choices := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if total, ok := replayChoices(w, choices, poolMB); ok && total < best {
				best = total
			}
			return
		}
		for c := -1; c < i; c++ {
			choices[i] = c
			// Prune: partial plans already worse than best are dead ends.
			if total, ok := replayChoices(w, choices[:i+1], poolMB); ok && total < best {
				rec(i + 1)
			}
		}
	}
	rec(0)
	return best
}

// replayChoices evaluates a (partial) plan; choice c >= 0 means "reuse the
// container that served invocation c". Returns (total, feasible).
func replayChoices(w workload.Workload, choices []int, poolMB float64) (time.Duration, bool) {
	or := &fixedPlan{choices: choices, byInv: map[int]int{}}
	sub := workload.Workload{Name: w.Name, Functions: w.Functions, Invocations: w.Invocations[:len(choices)]}
	g := policy.NewGreedyMatch()
	p := platform.New(platform.Config{PoolCapacityMB: poolMB, Evictor: g.Evictor()}, or)
	res := p.Run(sub)
	if or.infeasible {
		return 0, false
	}
	return res.Metrics.TotalStartup(), true
}

// fixedPlan replays a fixed choice list, flagging infeasible plans
// (container busy, evicted or mismatched) instead of panicking.
type fixedPlan struct {
	choices    []int
	byInv      map[int]int
	infeasible bool
}

func (f *fixedPlan) Name() string { return "fixed-plan" }

func (f *fixedPlan) Schedule(env platform.Env, inv *workload.Invocation) int {
	ch := f.choices[inv.Seq]
	if ch < 0 {
		return platform.ColdStart
	}
	id, ok := f.byInv[ch]
	if !ok {
		f.infeasible = true
		return platform.ColdStart
	}
	c := env.Pool.Get(id)
	if c == nil {
		f.infeasible = true
		return platform.ColdStart
	}
	if lv := coreMatch(inv, c.Image); lv == 0 {
		f.infeasible = true
		return platform.ColdStart
	}
	return id
}

func coreMatch(inv *workload.Invocation, img image.Image) int {
	lv := 0
	for _, l := range image.Levels {
		if inv.Fn.Image.LevelKey(l) != img.LevelKey(l) {
			return lv
		}
		lv++
	}
	return lv
}

func (f *fixedPlan) OnResult(_ platform.Env, inv *workload.Invocation, res platform.Result) {
	f.byInv[inv.Seq] = res.ContainerID
}
