package experiments

import (
	"fmt"
	"time"

	"mlcr/internal/evict"
	"mlcr/internal/platform"
	"mlcr/internal/policy"
	"mlcr/internal/pool"
	"mlcr/internal/report"
	"mlcr/internal/runner"
	"mlcr/internal/workload"
)

// GridCell is one scheduler × evictor pairing's result on a workload.
type GridCell struct {
	Scheduler    string
	Evictor      string
	TotalStartup time.Duration
	AvgStartup   time.Duration
	ColdStarts   int
	Evictions    int
	Rejections   int
	Expirations  int
}

// GridResult is the full scheduler × evictor comparison of one
// workload at one pool size — the strategy-space map the eviction-policy
// zoo exists for: every reuse scheduler crossed with every eviction
// policy, so MLCR's margin can be read against the whole space instead
// of three fixed pairings.
type GridResult struct {
	PoolMB     float64
	Schedulers []string
	Evictors   []string
	Cells      []GridCell // row-major: schedulers × evictors
}

// Cell returns the cell for (scheduler, evictor), or nil.
func (r GridResult) Cell(sched, ev string) *GridCell {
	for i := range r.Cells {
		if r.Cells[i].Scheduler == sched && r.Cells[i].Evictor == ev {
			return &r.Cells[i]
		}
	}
	return nil
}

// EvictionGrid runs every scheduler × evictor pairing over the workload
// at the given pool size through the parallel harness. Empty scheduler
// or evictor lists default to policy.GridSchedulers() and the full
// evict registry. Each run constructs fresh scheduler and policy
// instances (seeded from opts.Seed), so the grid is bit-identical at
// any Options.Parallelism.
func EvictionGrid(w workload.Workload, poolMB float64, scheds, evictors []string, opts Options) GridResult {
	opts = opts.WithDefaults()
	if len(scheds) == 0 {
		scheds = policy.GridSchedulers()
	}
	if len(evictors) == 0 {
		evictors = evict.Names()
	}
	out := GridResult{PoolMB: poolMB, Schedulers: scheds, Evictors: evictors}

	var specs []runner.Spec
	for _, sn := range scheds {
		if _, ok := policy.NewByName(sn, opts.Seed); !ok {
			panic(fmt.Sprintf("experiments: unknown grid scheduler %q (have %v)", sn, policy.GridSchedulers()))
		}
		for _, en := range evictors {
			if _, err := evict.New(en, opts.Seed); err != nil {
				panic(err)
			}
			sn, en := sn, en
			specs = append(specs, runner.Spec{
				Name: sn + "/" + en, Workload: w, PoolCapacityMB: poolMB,
				New: func() (platform.Scheduler, pool.Evictor) {
					sched, _ := policy.NewByName(sn, opts.Seed)
					return sched, evict.MustNew(en, opts.Seed)
				},
			})
		}
	}
	results := runner.Run(specs, opts.runnerOpts())
	i := 0
	for _, sn := range scheds {
		for _, en := range evictors {
			res := results[i]
			i++
			st := res.PoolStats
			out.Cells = append(out.Cells, GridCell{
				Scheduler:    sn,
				Evictor:      en,
				TotalStartup: res.Metrics.TotalStartup(),
				AvgStartup:   res.Metrics.AvgStartup(),
				ColdStarts:   res.Metrics.ColdStarts(),
				Evictions:    st.Evictions,
				Rejections:   st.Rejections,
				Expirations:  st.Expirations,
			})
		}
	}
	return out
}

// Table renders the grid, one row per scheduler × evictor pairing.
func (r GridResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("scheduler × evictor grid (pool = %.0f MB)", r.PoolMB),
		Header: []string{"scheduler", "evictor", "total startup", "avg startup",
			"cold starts", "evictions", "rejections", "expirations"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Scheduler, c.Evictor, c.TotalStartup, c.AvgStartup,
			c.ColdStarts, c.Evictions, c.Rejections, c.Expirations)
	}
	return t
}
