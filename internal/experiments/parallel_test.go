package experiments

import (
	"reflect"
	"testing"

	"mlcr/internal/fstartbench"
	"mlcr/internal/runner"
)

// sweepFingerprints runs a 5-policy sweep over two workloads at the
// given parallelism and returns one fingerprint per run, in spec order.
func sweepFingerprints(t *testing.T, parallelism int) []string {
	t.Helper()
	setups := append(Baselines(), CostGreedySetup())
	var out []string
	for _, seed := range []int64{3, 9} {
		w := fstartbench.Build(fstartbench.Uniform, seed, fstartbench.Options{Count: 120})
		results := RunAll(setups, w, 1500, Options{Parallelism: parallelism})
		for _, res := range results {
			out = append(out, runner.Fingerprint(res))
		}
	}
	return out
}

// TestRunAllParallelMatchesSequential: the experiments sweep API must be
// bit-identical at any parallelism (5 policies × 2 workloads).
func TestRunAllParallelMatchesSequential(t *testing.T) {
	seq := sweepFingerprints(t, 1)
	for _, par := range []int{8, 0} {
		got := sweepFingerprints(t, par)
		if !reflect.DeepEqual(seq, got) {
			t.Fatalf("parallelism %d diverged from sequential sweep", par)
		}
	}
}

// TestMLCRSetupFreshPerRun: every New call on an MLCR setup must return
// a distinct scheduler instance — handing out the trained original would
// let concurrent runs share its mutable inference state.
func TestMLCRSetupFreshPerRun(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	w := fstartbench.Build(fstartbench.Uniform, 1, fstartbench.Options{Count: 40})
	loose := CalibrateLoose(w)
	s := TrainMLCR(w, loose, nil, Options{Seed: 1, Episodes: 2})
	setup := MLCRSetup(s)
	a, _ := setup.New()
	b, _ := setup.New()
	if a == s || b == s {
		t.Fatal("MLCRSetup handed out the trained original")
	}
	if a == b {
		t.Fatal("MLCRSetup returned the same instance twice")
	}
	// Clones decide exactly like the original would have.
	ra := RunOnce(Setup{Name: "a", New: setup.New}, w, loose*0.5)
	rb := RunOnce(Setup{Name: "b", New: setup.New}, w, loose*0.5)
	if runner.Fingerprint(ra) != runner.Fingerprint(rb) {
		t.Fatal("two MLCR clones diverged on the same workload")
	}
}

// TestTuneMarginParallelMatchesSequential: concurrent margin search must
// select the margin the sequential loop selected, and leave the
// scheduler configured with it.
func TestTuneMarginParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	w := fstartbench.Build(fstartbench.HiSim, 2, fstartbench.Options{Count: 80})
	loose := CalibrateLoose(w)
	s := TrainMLCR(w, loose, nil, Options{Seed: 2, Episodes: 2})

	seq := TuneMargin(s, w, loose*0.5, 1)
	if got := s.DeviationMargin(); got != seq {
		t.Fatalf("sequential tune left margin %v, selected %v", got, seq)
	}
	for _, par := range []int{8, 0} {
		if got := TuneMargin(s, w, loose*0.5, par); got != seq {
			t.Fatalf("parallelism %d selected margin %v, sequential selected %v", par, got, seq)
		}
		if got := s.DeviationMargin(); got != seq {
			t.Fatalf("parallelism: scheduler left with margin %v, want %v", got, seq)
		}
	}
}

// TestFig10ParallelDeterministic: a whole figure driver must produce the
// identical result structure at any parallelism (training, margin
// tuning and the evaluation sweep all flow through the harness).
func TestFig10ParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	seqOpts := tiny()
	seqOpts.Parallelism = 1
	parOpts := tiny()
	parOpts.Parallelism = 0
	seq := Fig10(seqOpts)
	par := Fig10(parOpts)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig10 diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestCacheStudyParallelDeterministic: the cache sweep builds per-run
// caches through factories; rows must be identical at any parallelism.
func TestCacheStudyParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep")
	}
	seqOpts := tiny()
	seqOpts.Parallelism = 1
	parOpts := tiny()
	parOpts.Parallelism = 0
	seq := CacheStudy(seqOpts)
	par := CacheStudy(parOpts)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("CacheStudy diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}
