package experiments

import (
	"strings"
	"testing"
	"time"

	"mlcr/internal/fstartbench"
	"mlcr/internal/mlcr"
)

// tiny returns a minimal-budget Options for tests: one repeat, a very
// short training run, and a prohibitively large deviation margin so the
// undertrained model behaves exactly like its greedy fallback. These
// tests validate harness shapes; learned-policy quality is covered by
// the mlcr package tests and the full benchmarks.
func tiny() Options {
	o := Options{Seed: 1, Repeats: 1, Episodes: 3}
	o.MLCR.DeviationMargin = 100
	return o
}

func TestFig1Shape(t *testing.T) {
	r := Fig1()
	if len(r.Rows) != 8 { // 4 functions × 2 modes
		t.Fatalf("got %d rows, want 8", len(r.Rows))
	}
	// Every W-mode start must be at least as fast as its C-mode start.
	for i := 0; i < len(r.Rows); i += 2 {
		c, w := r.Rows[i], r.Rows[i+1]
		if c.Mode != "C" || w.Mode != "W" {
			t.Fatalf("row order broken at %d", i)
		}
		if w.Startup.Total() > c.Startup.Total() {
			t.Errorf("%s: W (%v) slower than C (%v)", w.Fn, w.Startup.Total(), c.Startup.Total())
		}
	}
	// The paper reports up to 14×; our calibrated model must show a
	// large spread too.
	if r.MaxSpeedup < 5 {
		t.Errorf("max speedup %.1f, want >= 5", r.MaxSpeedup)
	}
	if !strings.Contains(r.Table().String(), "max speedup") {
		t.Error("table missing caption")
	}
}

func TestFig2GreedySuboptimal(t *testing.T) {
	r := Fig2()
	if r.OptimalTotal >= r.GreedyTotal {
		t.Fatalf("optimal (%v) not better than greedy (%v)", r.OptimalTotal, r.GreedyTotal)
	}
	if len(r.GreedyRows) != 4 {
		t.Fatalf("got %d rows", len(r.GreedyRows))
	}
	if !strings.Contains(r.Table().String(), "greedy total") {
		t.Error("table missing caption")
	}
}

func TestFig3Calibration(t *testing.T) {
	r := Fig3(1)
	if r.TopOSShare < 0.72 || r.TopOSShare > 0.82 {
		t.Fatalf("top-4 OS share %.3f, want ≈ 0.77", r.TopOSShare)
	}
	if len(r.TopBases) == 0 || len(r.TopLanguages) == 0 {
		t.Fatal("missing top entries")
	}
	if r.TopBases[0].Name != "ubuntu" {
		t.Errorf("most popular base = %q, want ubuntu", r.TopBases[0].Name)
	}
	out := r.Table().String()
	if !strings.Contains(out, "ubuntu") || !strings.Contains(out, "python") {
		t.Error("table missing entries")
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	r := Fig8(tiny())
	if len(r.Cells) != len(PolicyNames)*len(OverallPools) {
		t.Fatalf("got %d cells", len(r.Cells))
	}
	if r.LooseMB <= 0 {
		t.Fatal("Loose not calibrated")
	}
	for _, pool := range []string{"Tight", "Moderate", "Loose"} {
		for _, p := range PolicyNames {
			c := r.Cell(p, pool)
			if c == nil || c.TotalStartup <= 0 {
				t.Fatalf("missing/empty cell %s/%s", p, pool)
			}
		}
	}
	// Larger pools must never increase a policy's latency dramatically;
	// in particular every policy improves from Tight to Loose.
	for _, p := range PolicyNames {
		tight := r.Cell(p, "Tight").TotalStartup
		loose := r.Cell(p, "Loose").TotalStartup
		if loose > tight {
			t.Errorf("%s: Loose (%v) worse than Tight (%v)", p, loose, tight)
		}
	}
	// MLCR (with its greedy fallback) must beat the plain KeepAlive
	// policy when warm resources are contended; at Loose every policy
	// converges (nothing is ever evicted), so allow a small tolerance.
	for _, pool := range []string{"Tight", "Moderate"} {
		if m, k := r.Cell("MLCR", pool), r.Cell("KeepAlive", pool); m.TotalStartup >= k.TotalStartup {
			t.Errorf("%s: MLCR (%v) not better than KeepAlive (%v)", pool, m.TotalStartup, k.TotalStartup)
		}
	}
	if m, k := r.Cell("MLCR", "Loose"), r.Cell("KeepAlive", "Loose"); float64(m.TotalStartup) > 1.05*float64(k.TotalStartup) {
		t.Errorf("Loose: MLCR (%v) much worse than KeepAlive (%v)", m.TotalStartup, k.TotalStartup)
	}
	if !strings.Contains(r.Table().String(), "Loose pool") {
		t.Error("table missing caption")
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	r := Fig9(tiny(), 100)
	if len(r.Points) < 4 {
		t.Fatalf("got %d points", len(r.Points))
	}
	last := r.Points[len(r.Points)-1]
	if last.Invocations != 400 {
		t.Fatalf("last point at %d invocations", last.Invocations)
	}
	// Cumulative curves are monotone.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].GreedyLat < r.Points[i-1].GreedyLat || r.Points[i].MLCRLat < r.Points[i-1].MLCRLat {
			t.Fatal("cumulative latency not monotone")
		}
	}
	if last.GreedyLat != r.GreedyTotal || last.MLCRLat != r.MLCRTotal {
		t.Fatal("totals disagree with final cumulative point")
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	r := Fig10(tiny())
	if len(r.Rows) != 5 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.PeakPoolMB <= 0 || row.PeakPoolMB > r.LooseMB+1e-6 {
			t.Errorf("%s: peak pool %v outside (0, %v]", row.Policy, row.PeakPoolMB, r.LooseMB)
		}
	}
	// KeepAlive rejects rather than evicts.
	for _, row := range r.Rows {
		if row.Policy == "KeepAlive" && row.Evictions != 0 {
			t.Errorf("KeepAlive evicted %d times", row.Evictions)
		}
	}
}

func TestFig11SimilarityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	r := Fig11("similarity", tiny())
	if len(r.Cells) != 2*len(PolicyNames) {
		t.Fatalf("got %d cells", len(r.Cells))
	}
	// HI-Sim must be easier (lower latency) than LO-Sim for every policy.
	for _, p := range PolicyNames {
		hi := r.Cell(fstartbench.HiSim, p)
		lo := r.Cell(fstartbench.LoSim, p)
		if hi == nil || lo == nil {
			t.Fatalf("missing cells for %s", p)
		}
		if hi.MeanTotal >= lo.MeanTotal {
			t.Errorf("%s: HI-Sim (%v) not faster than LO-Sim (%v)", p, hi.MeanTotal, lo.MeanTotal)
		}
	}
	if !strings.Contains(r.Table().String(), "HI-Sim") {
		t.Error("table missing workloads")
	}
}

func TestFig11UnknownGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown group did not panic")
		}
	}()
	Fig11("nope", tiny())
}

func TestOverheadMeasures(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	r := Overhead(tiny())
	if r.Decisions != 400 {
		t.Fatalf("timed %d decisions, want 400", r.Decisions)
	}
	if r.MeanInference <= 0 || r.MeanInference > 50*time.Millisecond {
		t.Fatalf("mean inference %v implausible", r.MeanInference)
	}
	if r.MeanSavingWarm <= 0 {
		t.Fatal("no warm-start savings measured")
	}
}

func TestOptimalTotalTrivial(t *testing.T) {
	w := fig2Workload()
	w.Invocations = w.Invocations[:1]
	// One invocation, empty pool: optimal = its cold start.
	want := w.Invocations[0].Fn.ColdStartTime()
	if got := OptimalTotal(w, 4096); got != want {
		t.Fatalf("OptimalTotal = %v, want %v", got, want)
	}
}

func TestCalibrateLooseDeterministic(t *testing.T) {
	w := fstartbench.BuildOverall(5, fstartbench.OverallOptions{Count: 100})
	a, b := CalibrateLoose(w), CalibrateLoose(w)
	if a != b || a <= 0 {
		t.Fatalf("CalibrateLoose = %v, %v", a, b)
	}
}

func TestTrainMLCRReturnsInferenceMode(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	w := fstartbench.Build(fstartbench.Uniform, 1, fstartbench.Options{Count: 60})
	loose := CalibrateLoose(w)
	s := TrainMLCR(w, loose, []float64{0.5, 1}, Options{Seed: 1, Episodes: 2})
	// Two identical inference runs must agree (no residual exploration).
	a := RunOnce(MLCRSetup(s), w, loose)
	b := RunOnce(MLCRSetup(s), w, loose)
	if a.Metrics.TotalStartup() != b.Metrics.TotalStartup() {
		t.Fatal("trained scheduler still stochastic")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Repeats <= 0 || o.Episodes <= 0 || o.MLCR.Slots <= 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
	var c mlcr.Config
	if c = o.MLCR; c.Dim <= 0 {
		t.Fatalf("MLCR dim default missing: %+v", c)
	}
}

func TestCacheStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep")
	}
	r := CacheStudy(tiny())
	if len(r.Rows) != 8 { // 4 cache sizes × 2 policies
		t.Fatalf("got %d rows", len(r.Rows))
	}
	// A bigger cache never hurts a policy.
	byPolicy := map[string][]CacheRow{}
	for _, row := range r.Rows {
		byPolicy[row.Policy] = append(byPolicy[row.Policy], row)
	}
	for p, rows := range byPolicy {
		for i := 1; i < len(rows); i++ {
			if rows[i].TotalStartup > rows[i-1].TotalStartup {
				t.Errorf("%s: cache %v (%v) slower than %v (%v)", p,
					rows[i].CacheMB, rows[i].TotalStartup, rows[i-1].CacheMB, rows[i-1].TotalStartup)
			}
		}
	}
	// With no cache, hit rate column is zero.
	if r.Rows[0].HitRate != 0 {
		t.Error("cache-less row has a hit rate")
	}
	if !strings.Contains(r.Table().String(), "cache hit rate") {
		t.Error("table missing header")
	}
}
