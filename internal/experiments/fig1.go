package experiments

import (
	"fmt"
	"time"

	"mlcr/internal/container"
	"mlcr/internal/core"
	"mlcr/internal/fstartbench"
	"mlcr/internal/report"
)

// Fig1Row is one bar of Figure 1: the startup breakdown of a function
// started against a warm container under reuse mode C (same-configuration
// only: always a cold start here) or W (reuse the warm container, pulling
// missing packages).
type Fig1Row struct {
	Fn      string
	Mode    string // "C" or "W"
	Level   core.MatchLevel
	Startup container.Startup
}

// Fig1Result is the motivating experiment of Figure 1.
type Fig1Result struct {
	WarmFn string
	Rows   []Fig1Row
	// MaxSpeedup is the largest C/W total ratio across functions.
	MaxSpeedup float64
}

// Fig1 reproduces Figure 1: keep one function's container warm, then
// start four other functions against it under the two reuse modes.
// Functions are drawn from FStartBench: the warm container ran F5
// (Debian/Python/Flask); the probes are F10 (identical stack), F6 and F7
// (extend the stack at the runtime level) and F13 (large ML runtime) —
// the same spread of reuse depths as the paper's F2–F5.
func Fig1() Fig1Result {
	fns := fstartbench.Functions()
	warm := fstartbench.ByID(fns, 5)
	probes := fstartbench.Pick(fns, 10, 6, 7, 13)

	res := Fig1Result{WarmFn: warm.Name}
	for _, f := range probes {
		cold := container.Estimate(f, core.NoMatch, false)
		res.Rows = append(res.Rows, Fig1Row{Fn: f.Name, Mode: "C", Level: core.NoMatch, Startup: cold})

		lv := core.Match(f.Image, warm.Image)
		var wStart container.Startup
		if lv == core.NoMatch {
			wStart = cold // no reusable level: W degenerates to a cold start
		} else {
			wStart = container.Estimate(f, lv, f.ID != warm.ID)
		}
		res.Rows = append(res.Rows, Fig1Row{Fn: f.Name, Mode: "W", Level: lv, Startup: wStart})

		if sp := float64(cold.Total()) / float64(wStart.Total()); sp > res.MaxSpeedup {
			res.MaxSpeedup = sp
		}
	}
	return res
}

// Table renders the breakdown in the layout of Figure 1.
func (r Fig1Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig 1 — startup breakdown against a warm container of " + r.WarmFn,
		Header:  []string{"function", "mode", "match", "create", "clean", "pull", "install", "rt-init", "fn-init", "total"},
		Caption: fmt.Sprintf("max speedup W vs C: %.1fx (paper: up to 14x)", r.MaxSpeedup),
	}
	for _, row := range r.Rows {
		s := row.Startup
		t.AddRow(row.Fn, row.Mode, row.Level.String(),
			fmtMS(s.Create), fmtMS(s.Clean), fmtMS(s.Pull), fmtMS(s.Install),
			fmtMS(s.RuntimeInit), fmtMS(s.FunctionInit), report.FmtDur(s.Total()))
	}
	return t
}

func fmtMS(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return report.FmtDur(d)
}
