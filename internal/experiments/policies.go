// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section VI), plus the motivating experiments of
// Sections I–III. Each driver returns structured results and can render
// them as a report.Table; cmd/mlcr-bench and the repository benchmarks
// call these drivers to regenerate every figure.
package experiments

import (
	"math"
	"time"

	"mlcr/internal/evict"
	"mlcr/internal/mlcr"
	"mlcr/internal/obs"
	"mlcr/internal/platform"
	"mlcr/internal/policy"
	"mlcr/internal/pool"
	"mlcr/internal/runner"
	"mlcr/internal/workload"
)

// PolicyNames lists the compared policies in the paper's order.
var PolicyNames = []string{"LRU", "FaasCache", "KeepAlive", "Greedy-Match", "MLCR"}

// Setup carries a factory building a fresh scheduler and its paired
// eviction policy. New is called once per run, from the goroutine
// executing that run, and must return instances used by no other run —
// schedulers and evictors are stateful, and the parallel harness
// (internal/runner) panics when two runs share a scheduler instance.
type Setup struct {
	Name string
	New  func() (platform.Scheduler, pool.Evictor)
}

// Spec converts the setup into a runner.Spec for the parallel harness.
// The observer may be nil; when set it must be dedicated to this run.
func (s Setup) Spec(w workload.Workload, poolMB float64, o *obs.Observer) runner.Spec {
	sp := runner.Spec{Name: s.Name, Workload: w, PoolCapacityMB: poolMB, New: s.New}
	if o != nil {
		sp.NewObserver = func() *obs.Observer { return o }
	}
	return sp
}

// Baselines returns the paper's four comparison policies.
func Baselines() []Setup {
	return []Setup{
		{Name: "LRU", New: func() (platform.Scheduler, pool.Evictor) {
			s := policy.NewLRU()
			return s, s.Evictor()
		}},
		{Name: "FaasCache", New: func() (platform.Scheduler, pool.Evictor) {
			s := policy.NewFaasCache()
			return s, s.Evictor()
		}},
		{Name: "KeepAlive", New: func() (platform.Scheduler, pool.Evictor) {
			s := policy.NewKeepAlive()
			return s, s.Evictor()
		}},
		{Name: "Greedy-Match", New: func() (platform.Scheduler, pool.Evictor) {
			s := policy.NewGreedyMatch()
			return s, s.Evictor()
		}},
	}
}

// Options tune the experiment harness. The zero value gives CPU-friendly
// defaults; the paper's full-scale settings (50 repeats, long training)
// are reachable by raising Repeats/Episodes.
type Options struct {
	// Seed drives workload generation and MLCR initialization.
	Seed int64
	// Repeats is the number of workload seeds averaged per data point
	// (the paper repeats 50×; default 3).
	Repeats int
	// Episodes is the MLCR training budget per trained model
	// (default 16).
	Episodes int
	// MLCR overrides the scheduler configuration (Slots etc.).
	MLCR mlcr.Config
	// Parallelism bounds concurrent simulation runs inside the harness
	// (internal/runner): <=0 means GOMAXPROCS, 1 forces sequential.
	// Results are bit-identical at any setting.
	Parallelism int
	// Evictor, when non-empty, overrides every setup's default eviction
	// policy with the named one from the evict registry (see
	// evict.Names), adding the eviction-policy axis to Fig8/Fig11 and
	// the comparison tables.
	Evictor string
}

// runnerOpts converts the experiment options into harness options.
func (o Options) runnerOpts() runner.Options {
	return runner.Options{Parallelism: o.Parallelism}
}

// WithDefaults fills unset fields. The MLCR defaults (4 slots, a 24-wide
// embedding, 36 curriculum episodes, deviation margin 0.1) were selected
// by a sweep on the overall workload; they balance CPU training time
// against solution quality.
func (o Options) WithDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.Episodes == 0 {
		o.Episodes = 36
	}
	if o.MLCR.Slots == 0 {
		o.MLCR.Slots = 4
	}
	if o.MLCR.Dim == 0 {
		o.MLCR.Dim = 24
	}
	if o.MLCR.Hidden == 0 {
		o.MLCR.Hidden = 48
	}
	if o.MLCR.TrainEvery == 0 {
		o.MLCR.TrainEvery = 2
	}
	if o.MLCR.DeviationMargin == 0 {
		o.MLCR.DeviationMargin = 0.1
	}
	return o
}

// WithEvictor re-pairs each setup's scheduler with the named eviction
// policy from the evict registry, keeping setup names (the policy axis
// is reported separately). An empty name returns the setups unchanged;
// an unknown one panics with the registry's name list. seed feeds
// RNG-bearing policies (random); every run constructs its own policy
// instance, so results stay bit-identical at any parallelism.
func WithEvictor(setups []Setup, name string, seed int64) []Setup {
	if name == "" {
		return setups
	}
	if _, err := evict.New(name, seed); err != nil {
		panic(err)
	}
	out := make([]Setup, len(setups))
	for i, s := range setups {
		mk := s.New
		out[i] = Setup{Name: s.Name, New: func() (platform.Scheduler, pool.Evictor) {
			sched, _ := mk()
			return sched, evict.MustNew(name, seed)
		}}
	}
	return out
}

// RunOnce replays a workload through a fresh platform with the given
// setup and pool capacity. It is a single-spec run of the parallel
// harness (internal/runner).
func RunOnce(s Setup, w workload.Workload, poolMB float64) *platform.RunResult {
	return RunObserved(s, w, poolMB, nil)
}

// RunObserved is RunOnce with an observability bundle attached to the
// platform (nil disables instrumentation; see internal/obs).
func RunObserved(s Setup, w workload.Workload, poolMB float64, o *obs.Observer) *platform.RunResult {
	return runner.Run([]runner.Spec{s.Spec(w, poolMB, o)}, runner.Options{Parallelism: 1})[0]
}

// RunAll evaluates every setup on the same workload and pool capacity
// through the parallel harness, returning results in setup order. The
// result slice is bit-identical at any parallelism.
func RunAll(setups []Setup, w workload.Workload, poolMB float64, opts Options) []*platform.RunResult {
	specs := make([]runner.Spec, len(setups))
	for i, s := range setups {
		specs[i] = s.Spec(w, poolMB, nil)
	}
	return runner.Run(specs, opts.runnerOpts())
}

// TrainMLCR trains one MLCR scheduler on the given workload with a
// pool-size curriculum (Algorithm 1, offline): training episodes cycle
// through looseMB×fracs so a single model is robust across the pool
// settings it will be evaluated on. It returns the scheduler in
// inference mode.
func TrainMLCR(w workload.Workload, looseMB float64, fracs []float64, opts Options) *mlcr.Scheduler {
	opts = opts.WithDefaults()
	if len(fracs) == 0 {
		fracs = []float64{1}
	}
	cfg := opts.MLCR
	if cfg.Seed == 0 {
		cfg.Seed = opts.Seed
	}
	if cfg.NormMB == 0 {
		cfg.NormMB = looseMB * 0.5
		if cfg.NormMB <= 0 {
			cfg.NormMB = 2048
		}
	}
	if cfg.EpsilonDecayEpisodes == 0 {
		// Decay over ~2/3 of the budget, leaving greedy-refinement
		// episodes at the end.
		cfg.EpsilonDecayEpisodes = opts.Episodes * 2 / 3
		if cfg.EpsilonDecayEpisodes == 0 {
			cfg.EpsilonDecayEpisodes = 1
		}
	}
	s := mlcr.New(cfg)
	s.Train(mlcr.TrainOptions{
		Episodes:       opts.Episodes,
		PoolForEpisode: func(ep int) float64 { return looseMB * fracs[ep%len(fracs)] },
		Workload:       func(int) workload.Workload { return w },
	})
	return s
}

// MarginCandidates are the deviation-margin values considered by
// TuneMargin, from "trust the network" to "pure greedy fallback".
var MarginCandidates = []float64{0.05, 0.1, 0.2, 0.5, math.Inf(1)}

// TuneMargin selects the deviation margin that minimizes total startup
// latency for a trained scheduler on one pool size, by replaying the
// training workload — validation-based model selection within the
// paper's protocol (training and evaluation use the same FStartBench
// traces). It leaves the scheduler configured with the winning margin
// and returns it.
// Candidates are evaluated concurrently on weight-copied clones (the
// margin travels with each clone), and ties break toward the earlier
// candidate — the same selection the sequential loop made.
func TuneMargin(s *mlcr.Scheduler, w workload.Workload, poolMB float64, parallelism int) float64 {
	specs := make([]runner.Spec, len(MarginCandidates))
	for i, m := range MarginCandidates {
		m := m
		specs[i] = runner.Spec{
			Name: "MLCR-margin", Workload: w, PoolCapacityMB: poolMB,
			New: func() (platform.Scheduler, pool.Evictor) {
				c := s.Clone()
				c.SetDeviationMargin(m)
				return c, c.Evictor()
			},
		}
	}
	results := runner.Run(specs, runner.Options{Parallelism: parallelism})
	best, bestTotal := MarginCandidates[0], time.Duration(1<<62-1)
	for i, res := range results {
		if total := res.Metrics.TotalStartup(); total < bestTotal {
			best, bestTotal = MarginCandidates[i], total
		}
	}
	s.SetDeviationMargin(best)
	return best
}

// overallFracs and scaleFracs are the curriculum fractions matching the
// two evaluation pool grids.
func overallFracs() []float64 {
	out := make([]float64, len(OverallPools))
	for i, p := range OverallPools {
		out[i] = p.Frac
	}
	return out
}

func scaleFracs() []float64 {
	out := make([]float64, len(PoolScales))
	for i, p := range PoolScales {
		out[i] = p.Frac
	}
	return out
}

// MLCRSetup wraps a trained scheduler as a Setup. Each New call returns
// a weight-copied clone, never s itself: inference mutates scheduler
// state (forward-pass activation caches, the pending transition), so
// concurrent runs must not share one instance. A clone makes exactly
// the decisions the original would, including its deviation margin at
// clone time.
func MLCRSetup(s *mlcr.Scheduler) Setup {
	return Setup{Name: "MLCR", New: func() (platform.Scheduler, pool.Evictor) {
		c := s.Clone()
		return c, c.Evictor()
	}}
}

// CalibrateLoose computes the paper's Loose pool size for a workload:
// the peak memory of all alive containers (busy plus kept-warm) on a run
// with an unlimited pool (Section VI-A — "the peak memory size of all
// running containers in the cluster"; keep-alive containers remain
// running). The LRU policy drives the probe run.
func CalibrateLoose(w workload.Workload) float64 {
	s := policy.NewLRU()
	res := platform.New(platform.Config{PoolCapacityMB: 0, Evictor: s.Evictor()}, s).Run(w)
	return res.PeakAliveMB
}

// PoolScales are the benchmark-evaluation pool sizes as fractions of
// Loose (Section VI-A): 25%, 50%, 75% and 100%.
var PoolScales = []struct {
	Name string
	Frac float64
}{
	{"25%", 0.25}, {"50%", 0.50}, {"75%", 0.75}, {"100%", 1.00},
}

// OverallPools are the Section VI-B pool settings.
var OverallPools = []struct {
	Name string
	Frac float64
}{
	{"Tight", 0.2}, {"Moderate", 0.5}, {"Loose", 1.0},
}

// avgDuration returns the mean of ds.
func avgDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}

// avgInt returns the mean of xs rounded to the nearest integer.
func avgInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return (s + len(xs)/2) / len(xs)
}

// CostGreedySetup returns the cost-aware greedy ablation policy.
func CostGreedySetup() Setup {
	return Setup{Name: "Cost-Greedy", New: func() (platform.Scheduler, pool.Evictor) {
		s := policy.NewCostGreedy()
		return s, s.Evictor()
	}}
}
