package experiments

import (
	"fmt"

	"mlcr/internal/fstartbench"
	"mlcr/internal/report"
)

// Fig10Row is one policy's warm-resource usage under the Loose pool.
type Fig10Row struct {
	Policy      string
	PeakPoolMB  float64
	Evictions   int
	Rejections  int
	Expirations int
}

// Fig10Result is the warm-resource consumption comparison of Figure 10.
type Fig10Result struct {
	LooseMB float64
	Rows    []Fig10Row
}

// Fig10 measures peak warm-pool memory and eviction activity of every
// policy on the overall workload at the Loose pool size.
func Fig10(opts Options) Fig10Result {
	opts = opts.WithDefaults()
	w := fstartbench.BuildOverall(opts.Seed, fstartbench.OverallOptions{})
	loose := CalibrateLoose(w)
	trained := TrainMLCR(w, loose, overallFracs(), opts)
	TuneMargin(trained, w, loose, opts.Parallelism)

	out := Fig10Result{LooseMB: loose}
	setups := append(Baselines(), MLCRSetup(trained))
	results := RunAll(setups, w, loose, opts)
	for i, s := range setups {
		out.Rows = append(out.Rows, Fig10Row{
			Policy:      s.Name,
			PeakPoolMB:  results[i].PoolStats.PeakUsedMB,
			Evictions:   results[i].PoolStats.Evictions,
			Rejections:  results[i].PoolStats.Rejections,
			Expirations: results[i].PoolStats.Expirations,
		})
	}
	return out
}

// Table renders the resource-usage comparison.
func (r Fig10Result) Table() *report.Table {
	t := &report.Table{
		Title:  "Fig 10 — warm-pool consumption under Loose pool",
		Header: []string{"policy", "peak pool MB", "% of pool", "evictions", "rejections", "expirations"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Policy, fmt.Sprintf("%.0f", row.PeakPoolMB),
			fmt.Sprintf("%.0f%%", 100*row.PeakPoolMB/r.LooseMB),
			row.Evictions, row.Rejections, row.Expirations)
	}
	t.Caption = fmt.Sprintf("Loose pool = %.0f MB", r.LooseMB)
	return t
}
