package experiments

import (
	"time"

	"mlcr/internal/fstartbench"
	"mlcr/internal/platform"
	"mlcr/internal/policy"
	"mlcr/internal/pool"
	"mlcr/internal/report"
)

// AblationRow is one MLCR variant's result.
type AblationRow struct {
	Variant      string
	TotalStartup time.Duration
	ColdStarts   int
}

// AblationResult compares MLCR design choices on the overall workload at
// the Tight pool size (where scheduling quality matters most).
type AblationResult struct {
	PoolMB float64
	Rows   []AblationRow
}

// Ablation trains and evaluates MLCR variants that each disable one
// design choice:
//
//	full            — the shipped configuration
//	no-greedy-expl  — exploration is uniform over valid actions instead
//	                  of biased toward the greedy heuristic
//	no-margin       — the inference-time confidence gate is disabled
//	shaped-reward   — potential-based reward shaping on (off by default)
//	greedy-fallback — margin = ∞: the DQN is never consulted
//
// plus the two greedy reference policies.
func Ablation(opts Options) AblationResult {
	opts = opts.WithDefaults()
	w := fstartbench.BuildOverall(opts.Seed, fstartbench.OverallOptions{})
	loose := CalibrateLoose(w)
	poolMB := loose * 0.2 // Tight

	out := AblationResult{PoolMB: poolMB}
	variants := []struct {
		name   string
		mutate func(*Options)
	}{
		{"full", func(*Options) {}},
		{"no-greedy-expl", func(o *Options) { o.MLCR.GreedyExploreBias = -1 }},
		{"no-margin", func(o *Options) { o.MLCR.DeviationMargin = -1 }},
		{"shaped-reward", func(o *Options) { o.MLCR.ShapingWeight = 1 }},
	}
	for _, v := range variants {
		vo := opts
		v.mutate(&vo)
		trained := TrainMLCR(w, loose, overallFracs(), vo)
		if v.name == "full" {
			TuneMargin(trained, w, poolMB)
		}
		res := RunOnce(MLCRSetup(trained), w, poolMB)
		out.Rows = append(out.Rows, AblationRow{
			Variant:      "MLCR/" + v.name,
			TotalStartup: res.Metrics.TotalStartup(),
			ColdStarts:   res.Metrics.ColdStarts(),
		})
	}
	refs := []Setup{
		CostGreedySetup(),
		Baselines()[3], // Greedy-Match
		Baselines()[0], // LRU
		{Name: "Tabular-Q", Make: func() (platform.Scheduler, pool.Evictor) {
			s := policy.NewTabularQ(opts.Seed)
			return s, s.Evictor()
		}},
	}
	for _, s := range refs {
		res := RunOnce(s, w, poolMB)
		out.Rows = append(out.Rows, AblationRow{
			Variant:      s.Name,
			TotalStartup: res.Metrics.TotalStartup(),
			ColdStarts:   res.Metrics.ColdStarts(),
		})
	}
	return out
}

// Table renders the ablation comparison.
func (r AblationResult) Table() *report.Table {
	t := &report.Table{
		Title:  "Ablation — MLCR design choices (overall workload, Tight pool)",
		Header: []string{"variant", "total startup", "cold starts"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Variant, row.TotalStartup, row.ColdStarts)
	}
	return t
}
