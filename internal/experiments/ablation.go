package experiments

import (
	"time"

	"mlcr/internal/fstartbench"
	"mlcr/internal/platform"
	"mlcr/internal/policy"
	"mlcr/internal/pool"
	"mlcr/internal/report"
	"mlcr/internal/runner"
)

// AblationRow is one MLCR variant's result.
type AblationRow struct {
	Variant      string
	TotalStartup time.Duration
	ColdStarts   int
}

// AblationResult compares MLCR design choices on the overall workload at
// the Tight pool size (where scheduling quality matters most).
type AblationResult struct {
	PoolMB float64
	Rows   []AblationRow
}

// Ablation trains and evaluates MLCR variants that each disable one
// design choice:
//
//	full            — the shipped configuration
//	no-greedy-expl  — exploration is uniform over valid actions instead
//	                  of biased toward the greedy heuristic
//	no-margin       — the inference-time confidence gate is disabled
//	shaped-reward   — potential-based reward shaping on (off by default)
//	greedy-fallback — margin = ∞: the DQN is never consulted
//
// plus the two greedy reference policies.
func Ablation(opts Options) AblationResult {
	opts = opts.WithDefaults()
	w := fstartbench.BuildOverall(opts.Seed, fstartbench.OverallOptions{})
	loose := CalibrateLoose(w)
	poolMB := loose * 0.2 // Tight

	out := AblationResult{PoolMB: poolMB}
	variants := []struct {
		name   string
		mutate func(*Options)
	}{
		{"full", func(*Options) {}},
		{"no-greedy-expl", func(o *Options) { o.MLCR.GreedyExploreBias = -1 }},
		{"no-margin", func(o *Options) { o.MLCR.DeviationMargin = -1 }},
		{"shaped-reward", func(o *Options) { o.MLCR.ShapingWeight = 1 }},
	}
	// Each variant trains its own model, so variants run concurrently;
	// results land in variant order regardless of completion order.
	out.Rows = append(out.Rows, runner.Map(len(variants), opts.runnerOpts(), func(i int) AblationRow {
		v := variants[i]
		vo := opts
		v.mutate(&vo)
		trained := TrainMLCR(w, loose, overallFracs(), vo)
		if v.name == "full" {
			TuneMargin(trained, w, poolMB, opts.Parallelism)
		}
		res := RunOnce(MLCRSetup(trained), w, poolMB)
		return AblationRow{
			Variant:      "MLCR/" + v.name,
			TotalStartup: res.Metrics.TotalStartup(),
			ColdStarts:   res.Metrics.ColdStarts(),
		}
	})...)
	refs := []Setup{
		CostGreedySetup(),
		Baselines()[3], // Greedy-Match
		Baselines()[0], // LRU
		{Name: "Tabular-Q", New: func() (platform.Scheduler, pool.Evictor) {
			s := policy.NewTabularQ(opts.Seed)
			return s, s.Evictor()
		}},
	}
	results := RunAll(refs, w, poolMB, opts)
	for i, s := range refs {
		out.Rows = append(out.Rows, AblationRow{
			Variant:      s.Name,
			TotalStartup: results[i].Metrics.TotalStartup(),
			ColdStarts:   results[i].Metrics.ColdStarts(),
		})
	}
	return out
}

// Table renders the ablation comparison.
func (r AblationResult) Table() *report.Table {
	t := &report.Table{
		Title:  "Ablation — MLCR design choices (overall workload, Tight pool)",
		Header: []string{"variant", "total startup", "cold starts"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Variant, row.TotalStartup, row.ColdStarts)
	}
	return t
}
