package experiments

import (
	"fmt"
	"time"

	"mlcr/internal/fstartbench"
	"mlcr/internal/registry"
	"mlcr/internal/report"
	"mlcr/internal/runner"
)

// CacheRow is one (policy, cache size) cell of the registry-cache study.
type CacheRow struct {
	Policy       string
	CacheMB      float64
	TotalStartup time.Duration
	HitRate      float64
}

// CacheResult quantifies how a node-local package cache interacts with
// container reuse: caching accelerates the pulls that remain, reuse
// removes pulls entirely — Section II-A's "how to efficiently cache the
// downloaded codes" seen from both ends.
type CacheResult struct {
	PoolMB float64
	Rows   []CacheRow
}

// CacheStudy runs LRU (same-function reuse) and Greedy-Match
// (multi-level reuse) on the overall workload at the Tight pool with
// node-local package caches of increasing size.
func CacheStudy(opts Options) CacheResult {
	opts = opts.WithDefaults()
	w := fstartbench.BuildOverall(opts.Seed, fstartbench.OverallOptions{})
	loose := CalibrateLoose(w)
	poolMB := loose * 0.2

	out := CacheResult{PoolMB: poolMB}
	type cell struct {
		setup   Setup
		cacheMB float64
	}
	var cells []cell
	for _, cacheMB := range []float64{0, 256, 1024, 4096} {
		for _, s := range []Setup{Baselines()[0], Baselines()[3]} { // LRU, Greedy-Match
			cells = append(cells, cell{setup: s, cacheMB: cacheMB})
		}
	}
	// Each run builds its cache through the factory in its own goroutine;
	// the slot write is safe because factory i runs exactly once.
	caches := make([]*registry.Cache, len(cells))
	specs := make([]runner.Spec, len(cells))
	for i, c := range cells {
		i, c := i, c
		specs[i] = runner.Spec{Name: c.setup.Name, Workload: w, PoolCapacityMB: poolMB, New: c.setup.New}
		if c.cacheMB > 0 {
			specs[i].NewCache = func() *registry.Cache {
				caches[i] = registry.NewCache(c.cacheMB)
				return caches[i]
			}
		}
	}
	results := runner.Run(specs, opts.runnerOpts())
	for i, c := range cells {
		row := CacheRow{Policy: c.setup.Name, CacheMB: c.cacheMB, TotalStartup: results[i].Metrics.TotalStartup()}
		if caches[i] != nil {
			st := caches[i].Stats()
			if st.Hits+st.Misses > 0 {
				row.HitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Table renders the study.
func (r CacheResult) Table() *report.Table {
	t := &report.Table{
		Title:  "Registry cache study — node-local package cache vs container reuse (Tight pool)",
		Header: []string{"cache MB", "policy", "total startup", "cache hit rate"},
	}
	for _, row := range r.Rows {
		hr := "-"
		if row.CacheMB > 0 {
			hr = fmt.Sprintf("%.0f%%", 100*row.HitRate)
		}
		t.AddRow(fmt.Sprintf("%.0f", row.CacheMB), row.Policy, row.TotalStartup, hr)
	}
	t.Caption = "caching shortens the pulls that remain; multi-level reuse removes pulls entirely"
	return t
}
