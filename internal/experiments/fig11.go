package experiments

import (
	"fmt"
	"time"

	"mlcr/internal/fstartbench"
	"mlcr/internal/metrics"
	"mlcr/internal/report"
	"mlcr/internal/runner"
)

// Fig11Groups maps each panel of Figure 11 to its workloads.
var Fig11Groups = map[string][]string{
	"similarity": {fstartbench.HiSim, fstartbench.LoSim},
	"variance":   {fstartbench.LoVar, fstartbench.HiVar},
	"arrival":    {fstartbench.Uniform, fstartbench.Peak, fstartbench.Random},
}

// Fig11Cell is one box of the Figure 11 box charts: the distribution of
// total startup latency for (workload, policy) across pool sizes and
// repeats.
type Fig11Cell struct {
	Workload string
	Policy   string
	// Box summarizes the total startup latency (seconds) across the
	// 25/50/75/100% pool sizes and all repeats — the quantity whose
	// distribution the paper's box charts show.
	Box metrics.Box
	// MeanTotal is the mean total startup latency.
	MeanTotal time.Duration
}

// Fig11Result is one panel (a, b or c) of Figure 11.
type Fig11Result struct {
	Group string
	Cells []Fig11Cell
}

// Cell returns the cell for (workload, policy), or nil.
func (r Fig11Result) Cell(workload, policy string) *Fig11Cell {
	for i := range r.Cells {
		if r.Cells[i].Workload == workload && r.Cells[i].Policy == policy {
			return &r.Cells[i]
		}
	}
	return nil
}

// Fig11 runs one panel of the benchmark evaluation (Section VI-C):
// for every workload in the group and every policy, the workload is
// replayed at pool sizes of 25–100% of Loose for Options.Repeats seeds;
// each run contributes one total-startup-latency observation to the box.
// MLCR is trained once per (workload, repeat) at the 50% pool size.
// Repeats run concurrently (Options.Parallelism), each owning its
// workload and trained model; observations are merged in repeat order
// so the box statistics are bit-identical to a sequential run.
func Fig11(group string, opts Options) Fig11Result {
	names, ok := Fig11Groups[group]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown Fig 11 group %q", group))
	}
	opts = opts.WithDefaults()

	out := Fig11Result{Group: group}
	for _, wname := range names {
		type obsRow struct {
			policy string
			total  float64
		}
		reps := runner.Map(opts.Repeats, opts.runnerOpts(), func(rep int) []obsRow {
			w := fstartbench.Build(wname, opts.Seed+int64(rep)*211, fstartbench.Options{})
			loose := CalibrateLoose(w)

			repOpts := opts
			repOpts.Seed = opts.Seed + int64(rep)*409
			trained := TrainMLCR(w, loose, scaleFracs(), repOpts)

			var rows []obsRow
			for _, scale := range PoolScales {
				poolMB := loose * scale.Frac
				TuneMargin(trained, w, poolMB, opts.Parallelism)
				setups := WithEvictor(append(Baselines(), MLCRSetup(trained)), opts.Evictor, repOpts.Seed)
				results := RunAll(setups, w, poolMB, opts)
				for i, s := range setups {
					rows = append(rows, obsRow{policy: s.Name, total: results[i].Metrics.TotalStartup().Seconds()})
				}
			}
			return rows
		})

		totals := map[string][]float64{} // policy -> total startup (s) observations
		for _, rows := range reps {
			for _, row := range rows {
				totals[row.policy] = append(totals[row.policy], row.total)
			}
		}
		for _, p := range PolicyNames {
			obs := totals[p]
			out.Cells = append(out.Cells, Fig11Cell{
				Workload:  wname,
				Policy:    p,
				Box:       metrics.BoxOf(obs),
				MeanTotal: time.Duration(metrics.Mean(obs) * float64(time.Second)),
			})
		}
	}
	return out
}

// Table renders the panel with box statistics per workload × policy.
func (r Fig11Result) Table() *report.Table {
	t := &report.Table{
		Title:  "Fig 11 (" + r.Group + ") — total startup latency across pool sizes 25–100%",
		Header: []string{"workload", "policy", "mean total", "median (q1–q3) [min–max]", "MLCR reduction"},
	}
	byWorkload := map[string][]Fig11Cell{}
	var order []string
	for _, c := range r.Cells {
		if _, seen := byWorkload[c.Workload]; !seen {
			order = append(order, c.Workload)
		}
		byWorkload[c.Workload] = append(byWorkload[c.Workload], c)
	}
	for _, wname := range order {
		mlcrCell := r.Cell(wname, "MLCR")
		for _, c := range byWorkload[wname] {
			red := "-"
			if c.Policy != "MLCR" && mlcrCell != nil && c.MeanTotal > 0 {
				red = fmt.Sprintf("%.0f%%", 100*metrics.Reduction(c.MeanTotal, mlcrCell.MeanTotal))
			}
			t.AddRow(wname, c.Policy, c.MeanTotal, report.FmtBox(c.Box), red)
		}
	}
	return t
}
