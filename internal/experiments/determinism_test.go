package experiments

import (
	"testing"

	"mlcr/internal/fstartbench"
	"mlcr/internal/mlcr"
	"mlcr/internal/runner"
)

// endToEndSpecs builds the regression sweep: every baseline policy
// plus an MLCR scheduler (untrained, seeded weights — the full DQN
// inference path with its cached weight transposes, without the
// training cost) over two pool sizes of one workload. Each call
// builds the spec list afresh so the two executions below share no
// mutable state.
func endToEndSpecs(w, cfgSeed int64) []runner.Spec {
	wl := fstartbench.Build(fstartbench.HiSim, w, fstartbench.Options{Count: 150})
	cfg := Options{Seed: cfgSeed}.WithDefaults().MLCR
	cfg.Seed = cfgSeed
	cfg.NormMB = 1024
	setups := append(Baselines(), CostGreedySetup(), MLCRSetup(mlcr.New(cfg)))
	specs := make([]runner.Spec, 0, len(setups)*2)
	for _, s := range setups {
		for _, poolMB := range []float64{1200, 3000} {
			specs = append(specs, s.Spec(wl, poolMB, nil))
		}
	}
	return specs
}

// TestSpecDeterminismEndToEnd locks the property the mlcr-vet
// analyzers (internal/lint, DESIGN.md §9) enforce at the source
// level: the same runner specs executed twice — once at -parallel 1,
// once at -parallel 8 — produce identical fingerprints run for run,
// DQN inference included. A walltime/detrand/maprange violation
// anywhere on the scheduling path shows up here as a fingerprint
// mismatch; this test keeps the analyzers honest end to end.
func TestSpecDeterminismEndToEnd(t *testing.T) {
	seq := runner.Run(endToEndSpecs(5, 7), runner.Options{Parallelism: 1})
	par := runner.Run(endToEndSpecs(5, 7), runner.Options{Parallelism: 8})
	if len(seq) != len(par) {
		t.Fatalf("result lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := runner.Fingerprint(seq[i]), runner.Fingerprint(par[i])
		if a != b {
			t.Errorf("spec %d: -parallel 8 fingerprint differs from -parallel 1:\nseq: %.200s\npar: %.200s", i, a, b)
		}
	}
}
