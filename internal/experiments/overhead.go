package experiments

import (
	"fmt"
	"runtime"
	"time"

	"mlcr/internal/fstartbench"
	"mlcr/internal/mlcr"
	"mlcr/internal/obs/perf"
	"mlcr/internal/platform"
	"mlcr/internal/report"
	"mlcr/internal/workload"
)

// OverheadResult reports the scheduler-overhead analysis of Section VI-D:
// the wall-clock cost of one MLCR scheduling decision (featurization +
// Q-network inference) versus the startup latency it optimizes.
type OverheadResult struct {
	Decisions      int
	MeanInference  time.Duration
	P50Inference   time.Duration
	P99Inference   time.Duration
	MeanSavingWarm time.Duration // average latency saved per warm start vs cold
	// AllocsPerDecision is the steady-state heap allocations of one
	// inference decision through the workspace-reusing hot path
	// (featurization + Q-network forward); the optimized path holds this
	// at zero.
	AllocsPerDecision float64
}

// Overhead measures decision latency by replaying the overall workload
// through a trained MLCR scheduler and timing every Schedule call with
// the wall clock (the one experiment where wall time is the measurand).
func Overhead(opts Options) OverheadResult {
	opts = opts.WithDefaults()
	w := fstartbench.BuildOverall(opts.Seed, fstartbench.OverallOptions{})
	loose := CalibrateLoose(w)
	trained := TrainMLCR(w, loose, overallFracs(), opts)
	TuneMargin(trained, w, loose, opts.Parallelism)

	// The replay below stays sequential and off the harness: wall-clock
	// decision latency is the measurand, and concurrent runs would
	// contend for the CPU being timed.
	timer := &timingScheduler{inner: trained}
	res := platform.New(platform.Config{PoolCapacityMB: loose, Evictor: trained.Evictor()}, timer).Run(w)

	var saved time.Duration
	warm := 0
	for i, s := range res.Metrics.Samples() {
		if !s.Cold {
			saved += w.Invocations[i].Fn.ColdStartTime() - s.Startup
			warm++
		}
	}
	out := OverheadResult{Decisions: int(timer.times.Count())}
	if warm > 0 {
		out.MeanSavingWarm = saved / time.Duration(warm)
	}
	if timer.times.Count() > 0 {
		out.MeanInference = time.Duration(timer.times.Mean())
		out.P50Inference = time.Duration(timer.times.Quantile(0.50))
		out.P99Inference = time.Duration(timer.times.Quantile(0.99))
	}
	out.AllocsPerDecision = allocsPerDecision(trained, w, loose)
	return out
}

// allocsPerDecision replays a short prefix of the workload to warm the
// scheduler's workspaces, then measures the steady-state heap allocations
// of repeated inference decisions on a live environment.
func allocsPerDecision(s *mlcr.Scheduler, w workload.Workload, poolMB float64) float64 {
	probe := &probeScheduler{inner: s}
	platform.New(platform.Config{PoolCapacityMB: poolMB, Evictor: s.Evictor()}, probe).Run(w)
	if probe.env.Pool == nil || probe.inv == nil {
		return 0
	}
	// One extra decision warms any lazily grown workspace, then the
	// steady state is measured over repeated decisions at the captured
	// decision point.
	probe.inner.Schedule(probe.env, probe.inv)
	const rounds = 200
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		probe.inner.Schedule(probe.env, probe.inv)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / rounds
}

// probeScheduler delegates to the real scheduler while capturing the last
// decision point, so the allocation probe can re-issue a realistic
// Schedule call outside the simulation.
type probeScheduler struct {
	inner platform.Scheduler
	env   platform.Env
	inv   *workload.Invocation
}

func (p *probeScheduler) Name() string { return p.inner.Name() }

func (p *probeScheduler) Schedule(env platform.Env, inv *workload.Invocation) int {
	p.env, p.inv = env, inv
	return p.inner.Schedule(env, inv)
}

func (p *probeScheduler) OnResult(env platform.Env, inv *workload.Invocation, res platform.Result) {
	p.inner.OnResult(env, inv, res)
}

// timingScheduler wraps a scheduler and records wall-clock decision
// times into a streaming HDR, so timing a trace-scale replay costs a
// fixed ~15 KiB instead of one slice slot per decision.
type timingScheduler struct {
	inner platform.Scheduler
	times perf.HDR
}

func (t *timingScheduler) Name() string { return t.inner.Name() }

func (t *timingScheduler) Schedule(env platform.Env, inv *workload.Invocation) int {
	start := time.Now() //mlcr:allow walltime the overhead experiment measures real per-decision latency
	choice := t.inner.Schedule(env, inv)
	t.times.RecordDuration(time.Since(start)) //mlcr:allow walltime real latency measurement, reported not simulated
	return choice
}

func (t *timingScheduler) OnResult(env platform.Env, inv *workload.Invocation, res platform.Result) {
	t.inner.OnResult(env, inv, res)
}

// Table renders the overhead analysis.
func (r OverheadResult) Table() *report.Table {
	t := &report.Table{
		Title:  "Section VI-D — MLCR scheduler overhead",
		Header: []string{"metric", "value"},
	}
	t.AddRow("decisions timed", r.Decisions)
	t.AddRow("mean inference latency", fmt.Sprintf("%v", r.MeanInference))
	t.AddRow("p50 inference latency", fmt.Sprintf("%v", r.P50Inference))
	t.AddRow("p99 inference latency", fmt.Sprintf("%v", r.P99Inference))
	t.AddRow("steady-state allocs per decision", fmt.Sprintf("%.1f", r.AllocsPerDecision))
	t.AddRow("mean latency saved per warm start", report.FmtDur(r.MeanSavingWarm))
	t.Caption = "paper: 3–4 ms per decision on a V100; savings range from tens of ms to seconds"
	return t
}
