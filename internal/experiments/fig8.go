package experiments

import (
	"fmt"
	"time"

	"mlcr/internal/fstartbench"
	"mlcr/internal/metrics"
	"mlcr/internal/report"
	"mlcr/internal/runner"
)

// Fig8Cell is one bar of Figure 8: a policy's average result at one pool
// setting.
type Fig8Cell struct {
	Policy       string
	Pool         string
	TotalStartup time.Duration
	AvgStartup   time.Duration
	ColdStarts   int
}

// Fig8Result is the overall evaluation of Section VI-B: total startup
// latency (8a) and cold-start counts (8b) of the five policies under the
// Tight/Moderate/Loose pool settings.
type Fig8Result struct {
	LooseMB float64 // mean calibrated Loose size across repeats
	Cells   []Fig8Cell
}

// Cell returns the cell for (policy, pool), or nil.
func (r Fig8Result) Cell(policy, pool string) *Fig8Cell {
	for i := range r.Cells {
		if r.Cells[i].Policy == policy && r.Cells[i].Pool == pool {
			return &r.Cells[i]
		}
	}
	return nil
}

// Fig8 runs the overall evaluation: the 400-invocation all-functions
// workload (Poisson arrivals with random per-function rates), repeated
// over Options.Repeats seeds, for every policy × pool setting. MLCR is
// trained offline per repeat with a Tight/Moderate/Loose pool-size
// curriculum and evaluated on all three settings, matching the paper's
// offline-training/online-use split. Repeats execute concurrently
// (Options.Parallelism); each repeat owns its workload and trained
// model, and per-repeat observations are merged in repeat order so the
// averages are bit-identical to a sequential run.
func Fig8(opts Options) Fig8Result {
	opts = opts.WithDefaults()

	type accum struct {
		totals []time.Duration
		avgs   []time.Duration
		colds  []int
	}
	acc := map[string]map[string]*accum{} // policy -> pool -> accum
	for _, p := range PolicyNames {
		acc[p] = map[string]*accum{}
		for _, ps := range OverallPools {
			acc[p][ps.Name] = &accum{}
		}
	}

	type obsRow struct {
		policy, pool string
		total, avg   time.Duration
		colds        int
	}
	type repOut struct {
		loose float64
		rows  []obsRow
	}
	reps := runner.Map(opts.Repeats, opts.runnerOpts(), func(rep int) repOut {
		w := fstartbench.BuildOverall(opts.Seed+int64(rep)*101, fstartbench.OverallOptions{})
		loose := CalibrateLoose(w)

		repOpts := opts
		repOpts.Seed = opts.Seed + int64(rep)*977
		trained := TrainMLCR(w, loose, overallFracs(), repOpts)

		out := repOut{loose: loose}
		for _, ps := range OverallPools {
			poolMB := loose * ps.Frac
			TuneMargin(trained, w, poolMB, opts.Parallelism)
			setups := WithEvictor(append(Baselines(), MLCRSetup(trained)), opts.Evictor, repOpts.Seed)
			results := RunAll(setups, w, poolMB, opts)
			for i, s := range setups {
				out.rows = append(out.rows, obsRow{
					policy: s.Name,
					pool:   ps.Name,
					total:  results[i].Metrics.TotalStartup(),
					avg:    results[i].Metrics.AvgStartup(),
					colds:  results[i].Metrics.ColdStarts(),
				})
			}
		}
		return out
	})

	var looseSum float64
	for _, rep := range reps {
		looseSum += rep.loose
		for _, row := range rep.rows {
			a := acc[row.policy][row.pool]
			a.totals = append(a.totals, row.total)
			a.avgs = append(a.avgs, row.avg)
			a.colds = append(a.colds, row.colds)
		}
	}

	out := Fig8Result{LooseMB: looseSum / float64(opts.Repeats)}
	for _, ps := range OverallPools {
		for _, p := range PolicyNames {
			a := acc[p][ps.Name]
			out.Cells = append(out.Cells, Fig8Cell{
				Policy:       p,
				Pool:         ps.Name,
				TotalStartup: avgDuration(a.totals),
				AvgStartup:   avgDuration(a.avgs),
				ColdStarts:   avgInt(a.colds),
			})
		}
	}
	return out
}

// Table renders Figures 8a and 8b side by side, with MLCR's reduction
// versus each baseline.
func (r Fig8Result) Table() *report.Table {
	t := &report.Table{
		Title:  "Fig 8 — overall: total startup latency (8a) and cold starts (8b)",
		Header: []string{"pool", "policy", "total startup", "avg startup", "cold starts", "MLCR reduction"},
	}
	for _, ps := range OverallPools {
		mlcrCell := r.Cell("MLCR", ps.Name)
		for _, p := range PolicyNames {
			c := r.Cell(p, ps.Name)
			if c == nil {
				continue
			}
			red := "-"
			if p != "MLCR" && mlcrCell != nil && c.TotalStartup > 0 {
				red = fmt.Sprintf("%.0f%%", 100*metrics.Reduction(c.TotalStartup, mlcrCell.TotalStartup))
			}
			t.AddRow(ps.Name, p, c.TotalStartup, c.AvgStartup, c.ColdStarts, red)
		}
	}
	t.Caption = fmt.Sprintf("Loose pool = %.0f MB (calibrated peak alive-container memory)", r.LooseMB)
	return t
}
