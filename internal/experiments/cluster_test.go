package experiments

import (
	"reflect"
	"testing"

	"mlcr/internal/cluster"
	"mlcr/internal/fstartbench"
)

func TestClusterGridSmoke(t *testing.T) {
	w := fstartbench.Build(fstartbench.Uniform, 5, fstartbench.Options{Count: 150})
	grid := ClusterGrid(w, 4, 4000, nil, nil, Options{Seed: 2})
	if len(grid.Cells) != len(cluster.RouterNames())*len(grid.Schedulers) {
		t.Fatalf("grid has %d cells, want %d", len(grid.Cells), len(cluster.RouterNames())*len(grid.Schedulers))
	}
	for _, c := range grid.Cells {
		if c.TotalStartup <= 0 {
			t.Errorf("%s/%s: no startup latency recorded", c.Router, c.Scheduler)
		}
	}
	if cell := grid.Cell("p2c", "Greedy-Match"); cell == nil {
		t.Fatal("Cell lookup failed for p2c/Greedy-Match")
	}
	if grid.Table() == nil {
		t.Fatal("grid table is nil")
	}
}

func TestClusterGridDeterministic(t *testing.T) {
	w := fstartbench.Build(fstartbench.Peak, 3, fstartbench.Options{Count: 120})
	routers := []string{"hash", "p2c", "least-loaded"}
	scheds := []string{"Greedy-Match", "Tabular-Q"}
	mk := func(par int) ClusterGridResult {
		return ClusterGrid(w, 5, 5000, routers, scheds, Options{Seed: 4, Parallelism: par})
	}
	seq := mk(1)
	for _, par := range []int{8, 0} {
		if got := mk(par); !reflect.DeepEqual(seq, got) {
			t.Fatalf("cluster grid diverged at parallelism %d", par)
		}
	}
}
