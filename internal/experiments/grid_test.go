package experiments

import (
	"crypto/sha256"
	"fmt"
	"reflect"
	"testing"

	"mlcr/internal/evict"
	"mlcr/internal/fstartbench"
	"mlcr/internal/platform"
	"mlcr/internal/policy"
	"mlcr/internal/pool"
	"mlcr/internal/runner"
)

// pinnedFingerprints are sha256[:12] hashes of the five baseline runs
// (Uniform and Peak, seed 3, pool 1500 MB) captured BEFORE the
// event-driven eviction refactor. The refactor's contract is that the
// O(log n) policies replay the O(n) scans bit-for-bit — any drift in
// victim selection, tie-breaking or TTL handling changes a hash here.
var pinnedFingerprints = map[string]string{
	"LRU/Uniform":          "8b18842028a83c3fe75186ff",
	"LRU/Peak":             "9d60c56e659952a02ea6e52a",
	"FaasCache/Uniform":    "358b6969f108d1641d072227",
	"FaasCache/Peak":       "831ca73a81fb5ba080a1264a",
	"KeepAlive/Uniform":    "40bde803d785af07b247cd8d",
	"KeepAlive/Peak":       "69fe41355f282423fc182149",
	"Greedy-Match/Uniform": "f29780c0847d8ed02d74d47c",
	"Greedy-Match/Peak":    "8f8f81c8687ebebc0b67727f",
	"Cost-Greedy/Uniform":  "34768fa930b91d5f19fb5579",
	"Cost-Greedy/Peak":     "9568584e5d2278c1e12674b7",
}

// TestPinnedBaselineFingerprints replays the capture runs and compares
// against the pre-refactor hashes.
func TestPinnedBaselineFingerprints(t *testing.T) {
	setups := append(Baselines(), CostGreedySetup())
	for _, s := range setups {
		for _, wname := range []string{fstartbench.Uniform, fstartbench.Peak} {
			w := fstartbench.Build(wname, 3, fstartbench.Options{})
			res := runner.Run([]runner.Spec{{
				Name: s.Name, Workload: w, PoolCapacityMB: 1500, New: s.New,
			}}, runner.Options{Parallelism: 1})[0]
			h := sha256.Sum256([]byte(runner.Fingerprint(res)))
			key := s.Name + "/" + wname
			if got := fmt.Sprintf("%x", h[:12]); got != pinnedFingerprints[key] {
				t.Errorf("%s fingerprint %s, pinned pre-refactor %s", key, got, pinnedFingerprints[key])
			}
		}
	}
}

// zooFingerprints runs every registered eviction policy under the
// Same-Function scheduler at the given parallelism and returns one
// fingerprint per policy, in registry order.
func zooFingerprints(t *testing.T, parallelism int) []string {
	t.Helper()
	w := fstartbench.Build(fstartbench.Peak, 5, fstartbench.Options{Count: 150})
	var specs []runner.Spec
	for _, name := range evict.Names() {
		name := name
		specs = append(specs, runner.Spec{
			Name: name, Workload: w, PoolCapacityMB: 1200,
			New: func() (platform.Scheduler, pool.Evictor) {
				return policy.NewSameFunction(), evict.MustNew(name, 5)
			},
		})
	}
	results := runner.Run(specs, runner.Options{Parallelism: parallelism})
	out := make([]string, len(results))
	for i, res := range results {
		out[i] = runner.Fingerprint(res)
	}
	return out
}

// TestZooParallelMatchesSequential: every policy in the eviction zoo —
// including the seeded random one — must be bit-identical at
// parallelism 1 and 8.
func TestZooParallelMatchesSequential(t *testing.T) {
	seq := zooFingerprints(t, 1)
	for _, par := range []int{8, 0} {
		if got := zooFingerprints(t, par); !reflect.DeepEqual(seq, got) {
			for i, name := range evict.Names() {
				if seq[i] != got[i] {
					t.Errorf("evictor %s diverged at parallelism %d", name, par)
				}
			}
			t.Fatalf("parallelism %d diverged from sequential zoo sweep", par)
		}
	}
}

// TestEvictionGridParallelDeterministic: the grid driver itself must
// produce the identical result structure at any parallelism.
func TestEvictionGridParallelDeterministic(t *testing.T) {
	w := fstartbench.Build(fstartbench.Uniform, 2, fstartbench.Options{Count: 100})
	seq := EvictionGrid(w, 1200, nil, nil, Options{Seed: 2, Parallelism: 1})
	for _, par := range []int{8, 0} {
		got := EvictionGrid(w, 1200, nil, nil, Options{Seed: 2, Parallelism: par})
		if !reflect.DeepEqual(seq, got) {
			t.Fatalf("grid at parallelism %d diverged from sequential", par)
		}
	}
	if len(seq.Cells) != len(policy.GridSchedulers())*len(evict.Names()) {
		t.Fatalf("grid has %d cells, want %d", len(seq.Cells), len(policy.GridSchedulers())*len(evict.Names()))
	}
	if c := seq.Cell("Same-Function", "lru"); c == nil || c.ColdStarts == 0 {
		t.Fatalf("Same-Function/lru cell missing or empty: %+v", c)
	}
}

// TestWithEvictorOverrides: WithEvictor must preserve setup names (the
// figure accumulators key on them) while swapping the eviction policy,
// and an LRU override must be a no-op for the LRU baseline.
func TestWithEvictorOverrides(t *testing.T) {
	w := fstartbench.Build(fstartbench.Uniform, 3, fstartbench.Options{Count: 120})
	base := append(Baselines(), CostGreedySetup())
	wrapped := WithEvictor(base, "lru", 3)
	for i := range base {
		if wrapped[i].Name != base[i].Name {
			t.Fatalf("WithEvictor renamed %q to %q", base[i].Name, wrapped[i].Name)
		}
		_, ev := wrapped[i].New()
		if ev.Name() != "lru" {
			t.Fatalf("setup %s: evictor %s, want lru", wrapped[i].Name, ev.Name())
		}
	}
	// The LRU baseline already pairs with LRU eviction: overriding it
	// with "lru" must not change the run.
	a := RunOnce(base[0], w, 1200)
	b := RunOnce(wrapped[0], w, 1200)
	if runner.Fingerprint(a) != runner.Fingerprint(b) {
		t.Fatal("lru override changed the LRU baseline's run")
	}
	if got := WithEvictor(base, "", 3); reflect.ValueOf(got).Pointer() != reflect.ValueOf(base).Pointer() {
		t.Fatal("empty evictor name must return the setups unchanged")
	}
}
