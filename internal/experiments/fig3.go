package experiments

import (
	"fmt"

	"mlcr/internal/hub"
	"mlcr/internal/report"
)

// Fig3Result summarizes the synthetic Docker Hub catalog statistics.
type Fig3Result struct {
	Catalog      hub.Catalog
	TopOSShare   float64 // pulls held by the 4 most popular base images
	TopLanguages []hub.Entry
	TopBases     []hub.Entry
}

// Fig3 regenerates the Figure 3 statistics from the calibrated synthetic
// catalog (top-1000 images).
func Fig3(seed int64) Fig3Result {
	c := hub.Generate(seed, 1000)
	bases := c.ByKind(hub.Base)
	langs := c.ByKind(hub.Language)
	topN := func(es []hub.Entry, n int) []hub.Entry {
		if len(es) > n {
			es = es[:n]
		}
		return es
	}
	return Fig3Result{
		Catalog:      c,
		TopOSShare:   c.TopShare(hub.Base, 4),
		TopBases:     topN(bases, 6),
		TopLanguages: topN(langs, 6),
	}
}

// Table renders the popularity summary with proportional bars.
func (r Fig3Result) Table() *report.Table {
	t := &report.Table{
		Title:  "Fig 3 — top-1000 Docker Hub images (synthetic, calibrated)",
		Header: []string{"kind", "image", "pulls (M)", ""},
	}
	var max float64
	for _, e := range append(append([]hub.Entry{}, r.TopBases...), r.TopLanguages...) {
		if f := float64(e.Pulls); f > max {
			max = f
		}
	}
	for _, e := range r.TopBases {
		t.AddRow("base", e.Name, fmt.Sprintf("%d", e.Pulls/1e6), report.Bar(float64(e.Pulls), max, 30))
	}
	for _, e := range r.TopLanguages {
		t.AddRow("language", e.Name, fmt.Sprintf("%d", e.Pulls/1e6), report.Bar(float64(e.Pulls), max, 30))
	}
	t.Caption = fmt.Sprintf("top-4 base images hold %.0f%% of base-image pulls (paper: 77%%)", 100*r.TopOSShare)
	return t
}
