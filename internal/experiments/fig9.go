package experiments

import (
	"time"

	"mlcr/internal/fstartbench"
	"mlcr/internal/report"
)

// Fig9Point is one checkpoint of the cumulative curves of Figure 9.
type Fig9Point struct {
	Invocations int
	GreedyLat   time.Duration
	MLCRLat     time.Duration
	GreedyCold  int
	MLCRCold    int
}

// Fig9Result compares Greedy-Match and MLCR along the arrival sequence
// under the Loose pool size.
type Fig9Result struct {
	Points      []Fig9Point
	GreedyTotal time.Duration
	MLCRTotal   time.Duration
}

// Fig9 runs the overall workload at Loose and samples the cumulative
// total startup latency and cold-start count every step invocations.
func Fig9(opts Options, step int) Fig9Result {
	opts = opts.WithDefaults()
	if step <= 0 {
		step = 50
	}
	w := fstartbench.BuildOverall(opts.Seed, fstartbench.OverallOptions{})
	loose := CalibrateLoose(w)

	trained := TrainMLCR(w, loose, overallFracs(), opts)
	TuneMargin(trained, w, loose, opts.Parallelism)
	setups := []Setup{Baselines()[3], MLCRSetup(trained)}
	results := RunAll(setups, w, loose, opts)
	gRes, mRes := results[0], results[1]

	gLat, gCold := gRes.Metrics.Cumulative()
	mLat, mCold := mRes.Metrics.Cumulative()

	out := Fig9Result{
		GreedyTotal: gRes.Metrics.TotalStartup(),
		MLCRTotal:   mRes.Metrics.TotalStartup(),
	}
	n := len(gLat)
	for i := step - 1; i < n; i += step {
		out.Points = append(out.Points, Fig9Point{
			Invocations: i + 1,
			GreedyLat:   gLat[i], MLCRLat: mLat[i],
			GreedyCold: gCold[i], MLCRCold: mCold[i],
		})
	}
	if n > 0 && (n%step) != 0 {
		out.Points = append(out.Points, Fig9Point{
			Invocations: n,
			GreedyLat:   gLat[n-1], MLCRLat: mLat[n-1],
			GreedyCold: gCold[n-1], MLCRCold: mCold[n-1],
		})
	}
	return out
}

// Table renders the cumulative comparison.
func (r Fig9Result) Table() *report.Table {
	t := &report.Table{
		Title:  "Fig 9 — cumulative startup latency and cold starts under Loose pool",
		Header: []string{"invocations", "greedy latency", "mlcr latency", "greedy colds", "mlcr colds"},
	}
	for _, p := range r.Points {
		t.AddRow(p.Invocations, p.GreedyLat, p.MLCRLat, p.GreedyCold, p.MLCRCold)
	}
	t.Caption = "totals: greedy " + report.FmtDur(r.GreedyTotal) + ", MLCR " + report.FmtDur(r.MLCRTotal)
	return t
}
