package experiments

import (
	"fmt"
	"time"

	"mlcr/internal/cluster"
	"mlcr/internal/platform"
	"mlcr/internal/policy"
	"mlcr/internal/report"
	"mlcr/internal/workload"
)

// ClusterCell is one routing × scheduler pairing's result on a cluster
// run: the front-end policy decides which worker each invocation lands
// on, the scheduler decides container reuse inside every worker.
type ClusterCell struct {
	Router       string
	Scheduler    string
	TotalStartup time.Duration
	AvgStartup   time.Duration
	ColdStarts   int
	// Spread is max/min invocations routed to any worker (0 when a
	// worker received nothing) — the load-balance summary of the
	// routing policy.
	Spread float64
}

// ClusterGridResult is the routing × scheduler comparison at one
// cluster size — the deployment-level companion of the scheduler ×
// evictor EvictionGrid: routing decides which worker's warm pool an
// invocation can reuse, so the front-end policy bounds what any
// per-worker scheduler can recover (Figure 4's deployment model).
type ClusterGridResult struct {
	Workers    int
	PoolMB     float64
	Routers    []string
	Schedulers []string
	Cells      []ClusterCell // row-major: routers × schedulers
}

// Cell returns the cell for (router, scheduler), or nil.
func (r ClusterGridResult) Cell(router, sched string) *ClusterCell {
	for i := range r.Cells {
		if r.Cells[i].Router == router && r.Cells[i].Scheduler == sched {
			return &r.Cells[i]
		}
	}
	return nil
}

// ClusterGrid runs every routing × scheduler pairing over the workload
// on a workers-sized cluster with a shared pool budget. Empty router
// or scheduler lists default to the full cluster.RouterNames() registry
// and policy.GridSchedulers(). Every pairing constructs fresh
// per-worker scheduler instances (seeded from opts.Seed), so the grid
// is bit-identical at any Options.Parallelism.
func ClusterGrid(w workload.Workload, workers int, poolMB float64, routers, scheds []string, opts Options) ClusterGridResult {
	opts = opts.WithDefaults()
	if len(routers) == 0 {
		routers = cluster.RouterNames()
	}
	if len(scheds) == 0 {
		scheds = policy.GridSchedulers()
	}
	out := ClusterGridResult{Workers: workers, PoolMB: poolMB, Routers: routers, Schedulers: scheds}

	for _, rn := range routers {
		if _, err := cluster.NewRouter(rn, cluster.RouterConfig{Workers: workers}); err != nil {
			panic("experiments: " + err.Error())
		}
		for _, sn := range scheds {
			if _, ok := policy.NewByName(sn, opts.Seed); !ok {
				panic(fmt.Sprintf("experiments: unknown grid scheduler %q (have %v)", sn, policy.GridSchedulers()))
			}
			res := cluster.Run(cluster.Config{
				Workers:        workers,
				PoolCapacityMB: poolMB,
				Router:         rn,
				RouterSeed:     opts.Seed,
				NewScheduler: func(worker int) platform.Scheduler {
					sched, _ := policy.NewByName(sn, opts.Seed+int64(worker))
					return sched
				},
				Evictor:     opts.Evictor,
				EvictorSeed: opts.Seed,
				Parallelism: opts.Parallelism,
			}, w)
			cell := ClusterCell{Router: rn, Scheduler: sn}
			var total time.Duration
			count := 0
			for _, pr := range res.PerWorker {
				total += pr.Metrics.TotalStartup()
				count += pr.Metrics.Count()
				cell.ColdStarts += pr.Metrics.ColdStarts()
			}
			cell.TotalStartup = total
			if count > 0 {
				cell.AvgStartup = total / time.Duration(count)
			}
			cell.Spread = routedSpread(res.Routed)
			out.Cells = append(out.Cells, cell)
		}
	}
	return out
}

// routedSpread is max/min routed invocations across workers (0 when
// any worker received nothing — an unbounded imbalance).
func routedSpread(routed []int) float64 {
	if len(routed) == 0 {
		return 0
	}
	min, max := routed[0], routed[0]
	for _, n := range routed[1:] {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		return 0
	}
	return float64(max) / float64(min)
}

// Table renders the grid, one row per routing × scheduler pairing.
func (r ClusterGridResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("routing × scheduler grid (%d workers, pool = %.0f MB)", r.Workers, r.PoolMB),
		Header: []string{"router", "scheduler", "total startup", "avg startup",
			"cold starts", "spread"},
	}
	for _, c := range r.Cells {
		spread := "∞"
		if c.Spread > 0 {
			spread = fmt.Sprintf("%.2f", c.Spread)
		}
		t.AddRow(c.Router, c.Scheduler, c.TotalStartup, c.AvgStartup, c.ColdStarts, spread)
	}
	return t
}
